// Crash-matrix recovery harness over the fault-injecting VFS.
//
// For every store flavour, a scripted workload runs with a crash
// injected at every mutating I/O operation k = 1..N, followed by a
// simulated power loss under each unsynced-data fate (lost, torn
// prefix, survives). The store is then reopened and its recovered
// state must equal the last committed prefix of the workload —
// atomicity — and every corruption case must surface as a clean
// `Status`, never UB. All randomness is seeded, so failures reproduce.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "persist/database_io.h"
#include "persist/intrinsic_store.h"
#include "persist/replica.h"
#include "persist/wal_database.h"
#include "persist/replicating_store.h"
#include "persist/schema_compat.h"
#include "persist/snapshot_store.h"
#include "serve/remote_shipper.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "storage/fault_vfs.h"
#include "storage/kv_store.h"
#include "test_util.h"
#include "storage/paged_store.h"
#include "storage/pager.h"
#include "types/parse.h"
#include "types/subtype.h"

namespace dbpl {
namespace {

using core::Oid;
using core::Value;
using persist::IntrinsicStore;
using persist::ReplicatingStore;
using persist::SnapshotStore;
using storage::FaultVfs;
using storage::KvStore;
using storage::LogRecordType;
using storage::PagedStore;
using storage::Pager;
using storage::WriteBatch;

using Fate = FaultVfs::UnsyncedFate;

constexpr Fate kAllFates[] = {Fate::kLost, Fate::kTornPrefix,
                              Fate::kSurvives};

const char* FateName(Fate f) {
  switch (f) {
    case Fate::kLost:
      return "lost";
    case Fate::kTornPrefix:
      return "torn-prefix";
    case Fate::kSurvives:
      return "survives";
  }
  return "?";
}

// ---------------------------------------------------------------------
// KvStore: atomic batch commits over the write-ahead log.
// ---------------------------------------------------------------------

using KvState = std::map<std::string, std::string>;

KvState Dump(const KvStore& store) {
  KvState out;
  for (const std::string& key : store.Keys()) {
    out[key] = *store.Get(key);
  }
  return out;
}

/// The scripted workload: `batches[i]` applied to `models[i]` gives
/// `models[i + 1]`; `models[0]` is the empty store.
struct KvWorkload {
  std::vector<WriteBatch> batches;
  std::vector<KvState> models;
};

KvWorkload MakeKvWorkload() {
  KvWorkload w;
  w.models.push_back({});
  auto add = [&w](const std::vector<std::pair<std::string, std::string>>& puts,
                  const std::vector<std::string>& deletes) {
    WriteBatch batch;
    KvState model = w.models.back();
    for (const auto& [k, v] : puts) {
      batch.Put(k, v);
      model[k] = v;
    }
    for (const std::string& k : deletes) {
      batch.Delete(k);
      model.erase(k);
    }
    w.batches.push_back(std::move(batch));
    w.models.push_back(std::move(model));
  };
  add({{"alpha", "1"}, {"beta", "2"}}, {});
  add({{"gamma", "3"}}, {"alpha"});
  add({{"beta", "20"}, {"delta", std::string(600, 'd')}, {"eps", "5"}}, {});
  add({{"zeta", "6"}}, {"beta", "eps"});
  add({{"alpha", "back"}, {"eta", std::string(100, 'e')}}, {"gamma"});
  return w;
}

TEST(CrashMatrixTest, KvStoreRecoversCommittedPrefixAtEveryCrashPoint) {
  const std::string path = "crash/kv.log";
  KvWorkload w = MakeKvWorkload();
  const size_t n_batches = w.batches.size();

  // Fault-free pass to learn the total number of mutating ops.
  uint64_t total_ops = 0;
  {
    FaultVfs vfs(0x5EED);
    auto store = KvStore::Open(&vfs, path);
    ASSERT_TRUE(store.ok()) << store.status();
    for (const WriteBatch& b : w.batches) {
      ASSERT_TRUE((*store)->Apply(b).ok());
    }
    total_ops = vfs.mutating_ops();
    EXPECT_EQ(Dump(**store), w.models[n_batches]);
  }
  ASSERT_GT(total_ops, n_batches);  // appends + one sync per batch

  for (uint64_t k = 1; k <= total_ops; ++k) {
    for (Fate fate : kAllFates) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + ", unsynced data " +
                   FateName(fate));
      FaultVfs vfs(0xC0FFEE + k * 2654435761ULL +
                   static_cast<uint64_t>(fate));
      vfs.CrashAtMutatingOp(k);
      size_t committed = 0;
      bool injected = false;
      {
        auto store = KvStore::Open(&vfs, path);
        if (!store.ok()) {
          injected = true;
        } else {
          for (const WriteBatch& b : w.batches) {
            if (!(*store)->Apply(b).ok()) {
              injected = true;
              break;
            }
            ++committed;
          }
        }
      }
      ASSERT_TRUE(injected);  // k <= total_ops, so the crash always fires
      ASSERT_TRUE(vfs.crashed());
      ASSERT_LT(committed, n_batches);

      vfs.PowerLoss(fate);
      auto reopened = KvStore::Open(&vfs, path);
      ASSERT_TRUE(reopened.ok()) << reopened.status();
      KvState got = Dump(**reopened);
      if (fate == Fate::kLost) {
        // Everything unsynced vanished: exactly the committed prefix.
        EXPECT_EQ(got, w.models[committed]);
      } else {
        // The in-flight batch may have fully reached the log (commit
        // marker included) before the plug was pulled; anything less
        // fails its CRC and is dropped. Never a half-applied batch.
        EXPECT_TRUE(got == w.models[committed] ||
                    got == w.models[committed + 1])
            << "recovered state is not a committed prefix";
      }

      // The recovered store must be fully usable.
      WriteBatch after;
      after.Put("post-recovery", "ok");
      ASSERT_TRUE((*reopened)->Apply(after).ok());
      EXPECT_EQ(*(*reopened)->Get("post-recovery"), "ok");
    }
  }
}

TEST(CrashMatrixTest, KvStoreSurvivesLyingFsync) {
  // With fsync dropped (reported OK, nothing made durable), committed
  // batches can vanish at power loss — but recovery must still land on
  // *some* committed prefix, never a torn state.
  const std::string path = "crash/kv_liar.log";
  KvWorkload w = MakeKvWorkload();
  for (Fate fate : kAllFates) {
    SCOPED_TRACE(FateName(fate));
    FaultVfs vfs(0xD0D0 + static_cast<uint64_t>(fate));
    vfs.set_drop_syncs(true);
    {
      auto store = KvStore::Open(&vfs, path);
      ASSERT_TRUE(store.ok());
      for (const WriteBatch& b : w.batches) {
        ASSERT_TRUE((*store)->Apply(b).ok());  // the fsyncs lie
      }
    }
    vfs.PowerLoss(fate);
    vfs.set_drop_syncs(false);
    auto reopened = KvStore::Open(&vfs, path);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    KvState got = Dump(**reopened);
    bool is_prefix = false;
    for (const KvState& model : w.models) {
      if (got == model) {
        is_prefix = true;
        break;
      }
    }
    EXPECT_TRUE(is_prefix) << "recovered state is not a committed prefix";
  }
}

// ---------------------------------------------------------------------
// Pager: torn page writes and bit flips are detected, not decoded.
// ---------------------------------------------------------------------

TEST(CrashMatrixTest, PagerTornPageWriteIsDetectedOrAtomic) {
  const std::string path = "crash/pages.db";
  const std::vector<uint8_t> old_payload(40, 0xAA);
  const std::vector<uint8_t> new_payload(40, 0xBB);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultVfs vfs(seed);
    {
      auto pager = Pager::Open(&vfs, path, 64);
      ASSERT_TRUE(pager.ok());
      for (int i = 0; i < 4; ++i) {
        auto id = (*pager)->Allocate();
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE((*pager)->Write(*id, old_payload).ok());
      }
      ASSERT_TRUE((*pager)->Sync().ok());
      // Crash inside the very next page write: it tears.
      vfs.CrashAtMutatingOp(1);
      EXPECT_FALSE((*pager)->Write(2, new_payload).ok());
    }
    vfs.PowerLoss(Fate::kTornPrefix);
    auto pager = Pager::Open(&vfs, path, 64);
    ASSERT_TRUE(pager.ok()) << pager.status();
    for (storage::PageId id = 0; id < 4; ++id) {
      auto read = (*pager)->Read(id);
      if (id != 2) {
        ASSERT_TRUE(read.ok()) << read.status();
        EXPECT_EQ(*read, old_payload);
        continue;
      }
      // The torn page either kept its old image, got the new one in
      // full, or fails its checksum — never a silently mixed payload.
      if (read.ok()) {
        EXPECT_TRUE(*read == old_payload || *read == new_payload);
      } else {
        EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
      }
    }
  }
}

TEST(CrashMatrixTest, PagerBitFlipSurfacesAsCorruption) {
  const std::string path = "crash/pages_flip.db";
  FaultVfs vfs(0xF11B);
  {
    auto pager = Pager::Open(&vfs, path, 64);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*pager)->Write(*id, std::vector<uint8_t>(30, 0x5A)).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  // Flip every bit of the page in turn; each flip must surface as a
  // checksum error (header bytes may also report a length error).
  for (uint64_t bit = 0; bit < 64 * 8; ++bit) {
    ASSERT_TRUE(vfs.FlipBit(path, bit).ok());
    auto pager = Pager::Open(&vfs, path, 64);
    ASSERT_TRUE(pager.ok());
    auto read = (*pager)->Read(0);
    if (bit < 30 * 8 + 64) {  // flips inside crc, length, or payload
      ASSERT_FALSE(read.ok()) << "bit " << bit;
      EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
    }
    // Flips in the zero padding beyond the payload are don't-cares.
    ASSERT_TRUE(vfs.FlipBit(path, bit).ok());  // restore
  }
}

// ---------------------------------------------------------------------
// PagedStore: the no-WAL ablation. No cross-page atomicity is promised,
// but recovery must be *clean*: every surviving record is one the
// workload actually wrote, and torn pages surface as Corruption.
// ---------------------------------------------------------------------

TEST(CrashMatrixTest, PagedStoreCrashIsDetectedOrCleanlyReadable) {
  const std::string path = "crash/paged.db";
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  // Every value each key ever held, plus "absent".
  std::map<std::string, std::set<std::string>> history;

  auto run_round = [&keys](PagedStore* store, int round) -> Status {
    for (size_t i = 0; i < keys.size(); ++i) {
      std::string value = "v" + std::to_string(round) + "-" +
                          std::string(20 + 10 * i, 'x');
      DBPL_RETURN_IF_ERROR(store->Put(keys[i], value));
    }
    return store->Flush();
  };
  for (size_t i = 0; i < keys.size(); ++i) {
    for (int round = 0; round < 3; ++round) {
      history[keys[i]].insert("v" + std::to_string(round) + "-" +
                              std::string(20 + 10 * i, 'x'));
    }
  }

  uint64_t total_ops = 0;
  {
    FaultVfs vfs(0xAB1E);
    auto store = PagedStore::Open(&vfs, path, 128);
    ASSERT_TRUE(store.ok());
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE(run_round(store->get(), round).ok());
    }
    total_ops = vfs.mutating_ops();
  }

  for (uint64_t k = 1; k <= total_ops; ++k) {
    for (Fate fate : kAllFates) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + ", unsynced data " +
                   FateName(fate));
      FaultVfs vfs(0xBEAD + k * 0x9E3779B9ULL + static_cast<uint64_t>(fate));
      vfs.CrashAtMutatingOp(k);
      {
        auto store = PagedStore::Open(&vfs, path, 128);
        if (store.ok()) {
          for (int round = 0; round < 3; ++round) {
            if (!run_round(store->get(), round).ok()) break;
          }
        }
      }
      vfs.PowerLoss(fate);
      auto reopened = PagedStore::Open(&vfs, path, 128);
      if (!reopened.ok()) {
        // A torn page tripped a checksum during directory load: the
        // ablation's documented failure mode, surfaced cleanly.
        EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
        continue;
      }
      for (const std::string& key : (*reopened)->Keys()) {
        auto value = (*reopened)->Get(key);
        if (!value.ok()) {
          EXPECT_EQ(value.status().code(), StatusCode::kCorruption);
          continue;
        }
        ASSERT_TRUE(history.contains(key)) << key;
        EXPECT_TRUE(history[key].contains(*value))
            << "recovered a value never written for " << key;
      }
    }
  }
}

// ---------------------------------------------------------------------
// SnapshotStore: whole-image saves behind an atomic rename.
// ---------------------------------------------------------------------

struct SnapshotModel {
  std::map<std::string, std::string> objects;  // oid string -> value string
  std::map<std::string, Oid> roots;

  bool operator==(const SnapshotModel& other) const = default;
};

SnapshotModel DumpImage(const SnapshotStore::Image& image) {
  SnapshotModel out;
  for (Oid oid : image.heap.Oids()) {
    out.objects[std::to_string(oid)] = (*image.heap.Get(oid)).ToString();
  }
  out.roots = image.roots;
  return out;
}

TEST(CrashMatrixTest, SnapshotStoreLoadsLastSavedImageAtEveryCrashPoint) {
  const std::string path = "crash/image.dbpl";
  // Three generations of an image, each a different heap + roots.
  auto make_generation = [](int gen) {
    auto heap = std::make_unique<core::Heap>();
    std::map<std::string, Oid> roots;
    for (int i = 0; i <= gen; ++i) {
      Oid oid = heap->Allocate(Value::RecordOf(
          {{"gen", Value::Int(gen)},
           {"name", Value::String("obj" + std::to_string(i))}}));
      roots["root" + std::to_string(i)] = oid;
    }
    return std::make_pair(std::move(heap), std::move(roots));
  };
  std::vector<SnapshotModel> models;

  uint64_t total_ops = 0;
  {
    FaultVfs vfs(0x51AF);
    for (int gen = 0; gen < 3; ++gen) {
      auto [heap, roots] = make_generation(gen);
      ASSERT_TRUE(SnapshotStore::Save(&vfs, path, *heap, roots).ok());
      auto image = SnapshotStore::Load(&vfs, path);
      ASSERT_TRUE(image.ok());
      models.push_back(DumpImage(*image));
    }
    total_ops = vfs.mutating_ops();
  }

  for (uint64_t k = 1; k <= total_ops; ++k) {
    for (Fate fate : kAllFates) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + ", unsynced data " +
                   FateName(fate));
      FaultVfs vfs(0x10AD + k * 0x2545F491ULL + static_cast<uint64_t>(fate));
      vfs.CrashAtMutatingOp(k);
      size_t saved = 0;
      for (int gen = 0; gen < 3; ++gen) {
        auto [heap, roots] = make_generation(gen);
        if (!SnapshotStore::Save(&vfs, path, *heap, roots).ok()) break;
        ++saved;
      }
      ASSERT_TRUE(vfs.crashed());
      ASSERT_LT(saved, 3u);
      vfs.PowerLoss(fate);
      auto image = SnapshotStore::Load(&vfs, path);
      if (saved == 0) {
        // No save completed its rename: there is no image, and a torn
        // temp file must never be mistaken for one.
        EXPECT_EQ(image.status().code(), StatusCode::kNotFound);
      } else {
        // The tmp file is synced before the rename, so the image the
        // name points at is always complete — all-or-nothing.
        ASSERT_TRUE(image.ok()) << image.status();
        EXPECT_EQ(DumpImage(*image), models[saved - 1]);
      }
    }
  }
}

// ---------------------------------------------------------------------
// ReplicatingStore: extern/intern handles behind atomic renames.
// ---------------------------------------------------------------------

TEST(CrashMatrixTest, ReplicatingStoreInternSeesOldOrNewGraph) {
  const std::string dir = "crash/rep";
  dyndb::Dynamic v1{Value::Int(41), types::Type::Int()};
  dyndb::Dynamic v2{Value::RecordOf({{"x", Value::Int(42)}}),
                    *types::ParseType("{x: Int}")};

  uint64_t total_ops = 0;
  {
    FaultVfs vfs(0x4E7);
    auto store = ReplicatingStore::Open(&vfs, dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Extern("h", v1).ok());
    ASSERT_TRUE((*store)->Extern("h", v2).ok());
    total_ops = vfs.mutating_ops();
  }

  for (uint64_t k = 1; k <= total_ops; ++k) {
    for (Fate fate : kAllFates) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + ", unsynced data " +
                   FateName(fate));
      FaultVfs vfs(0xE117 + k * 0x100000001B3ULL +
                   static_cast<uint64_t>(fate));
      vfs.CrashAtMutatingOp(k);
      size_t externed = 0;
      {
        auto store = ReplicatingStore::Open(&vfs, dir);
        if (store.ok()) {
          if ((*store)->Extern("h", v1).ok()) ++externed;
          if (externed == 1 && (*store)->Extern("h", v2).ok()) ++externed;
        }
      }
      vfs.PowerLoss(fate);
      auto store = ReplicatingStore::Open(&vfs, dir);
      ASSERT_TRUE(store.ok()) << store.status();
      auto interned = (*store)->Intern("h");
      if (externed == 0) {
        EXPECT_EQ(interned.status().code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(interned.ok()) << interned.status();
        const Value& expect = externed == 1 ? v1.value : v2.value;
        EXPECT_EQ(interned->value, expect);
      }
    }
  }
}

// ---------------------------------------------------------------------
// IntrinsicStore: commits of heap deltas through the KV log.
// ---------------------------------------------------------------------

struct IntrinsicModel {
  std::map<std::string, std::string> objects;  // oid -> value string
  std::map<std::string, Oid> roots;
  std::map<std::string, std::string> root_types;  // name -> type string

  bool operator==(const IntrinsicModel&) const = default;
};

IntrinsicModel DumpIntrinsic(const IntrinsicStore& store) {
  IntrinsicModel out;
  for (Oid oid : store.heap().Oids()) {
    out.objects[std::to_string(oid)] = (*store.heap().Get(oid)).ToString();
  }
  for (const std::string& name : store.RootNames()) {
    out.roots[name] = *store.GetRoot(name);
    out.root_types[name] = (*store.RootType(name)).ToString();
  }
  return out;
}

/// Applies commit step `step` (0-based) to the store. Returns the
/// commit's status; earlier heap mutations are infallible.
Status RunIntrinsicStep(IntrinsicStore* store, int step) {
  core::Heap& heap = store->heap();
  switch (step) {
    case 0: {
      Oid emp = heap.Allocate(Value::RecordOf(
          {{"Name", Value::String("Ada")}, {"Age", Value::Int(36)}}));
      DBPL_RETURN_IF_ERROR(store->SetRootTyped(
          "emp", emp, *types::ParseType("{Name: String, Age: Int}")));
      break;
    }
    case 1: {
      Oid emp = *store->GetRoot("emp");
      DBPL_RETURN_IF_ERROR(heap.Put(
          emp, Value::RecordOf({{"Name", Value::String("Grace")},
                                {"Age", Value::Int(37)}})));
      Oid note = heap.Allocate(Value::String("promoted"));
      DBPL_RETURN_IF_ERROR(store->SetRoot("note", note));
      break;
    }
    case 2: {
      DBPL_RETURN_IF_ERROR(store->RemoveRoot("note"));
      store->CollectGarbage();
      break;
    }
    default:
      return Status::Internal("no such step");
  }
  return store->Commit();
}

TEST(CrashMatrixTest, IntrinsicStoreRecoversCommittedPrefixAtEveryCrashPoint) {
  const std::string path = "crash/intr.log";
  constexpr int kSteps = 3;
  std::vector<IntrinsicModel> models;  // models[i] = state after i commits

  uint64_t total_ops = 0;
  {
    FaultVfs vfs(0x1A7E);
    auto store = IntrinsicStore::Open(&vfs, path);
    ASSERT_TRUE(store.ok());
    models.push_back(DumpIntrinsic(**store));
    for (int step = 0; step < kSteps; ++step) {
      ASSERT_TRUE(RunIntrinsicStep(store->get(), step).ok());
      models.push_back(DumpIntrinsic(**store));
    }
    total_ops = vfs.mutating_ops();
  }

  for (uint64_t k = 1; k <= total_ops; ++k) {
    for (Fate fate : kAllFates) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + ", unsynced data " +
                   FateName(fate));
      FaultVfs vfs(0x717E + k * 0xFF51AFD7ULL + static_cast<uint64_t>(fate));
      vfs.CrashAtMutatingOp(k);
      size_t committed = 0;
      {
        auto store = IntrinsicStore::Open(&vfs, path);
        if (store.ok()) {
          for (int step = 0; step < kSteps; ++step) {
            if (!RunIntrinsicStep(store->get(), step).ok()) break;
            ++committed;
          }
        }
      }
      ASSERT_TRUE(vfs.crashed());
      ASSERT_LT(committed, static_cast<size_t>(kSteps));
      vfs.PowerLoss(fate);
      auto reopened = IntrinsicStore::Open(&vfs, path);
      ASSERT_TRUE(reopened.ok()) << reopened.status();
      IntrinsicModel got = DumpIntrinsic(**reopened);
      if (fate == Fate::kLost) {
        EXPECT_TRUE(got == models[committed]);
      } else {
        EXPECT_TRUE(got == models[committed] || got == models[committed + 1])
            << "recovered state is not a committed prefix";
      }
      EXPECT_FALSE((*reopened)->HasUncommittedChanges());
    }
  }
}

// ---------------------------------------------------------------------
// Database snapshot saves racing live inserts. The save thread persists
// whatever snapshot it acquires while a writer keeps inserting; a crash
// is injected into the save's I/O. Recovery must land on NotFound (no
// complete image ever reached its rename) or on *some* consistent
// snapshot: an insertion-order prefix with untorn, correctly-typed
// entries — never a mix of two saves and never a torn entry.
// ---------------------------------------------------------------------

TEST(CrashMatrixTest, ConcurrentSnapshotSaveRacingInsertsRecovers) {
  const std::string path = "crash/dyndb.img";
  constexpr int kInserts = 192;

  dyndb::Database db;
  std::thread writer([&db] {
    for (int i = 0; i < kInserts; ++i) {
      db.MustInsertValue(Value::RecordOf(
          {{"seq", Value::Int(i)}, {"tag", Value::String("r")}}));
    }
  });

  // One VFS across all crash points: each completed save supersedes the
  // previous image via the atomic rename, exactly like a long-lived
  // checkpoint file.
  FaultVfs vfs(0xDB5E);
  for (uint64_t k = 1; k <= 24; ++k) {
    Fate fate = kAllFates[k % 3];
    SCOPED_TRACE("crash at op +" + std::to_string(k) + ", unsynced data " +
                 FateName(fate));
    vfs.CrashAtMutatingOp(k);
    // Keep saving fresh snapshots (racing the writer) until the
    // injected crash fires; it always does, since every save mutates.
    while (persist::SaveDatabase(&vfs, path, db).ok()) {
    }
    ASSERT_TRUE(vfs.crashed());
    vfs.PowerLoss(fate);

    auto loaded = persist::LoadDatabase(&vfs, path);
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
          << loaded.status();
      continue;
    }
    // A recovered image is a consistent snapshot: entry i is the
    // untorn i-th insert, carrying its type (P2), and every Get
    // strategy agrees on it.
    dyndb::Database::Snapshot snap = loaded->GetSnapshot();
    ASSERT_LE(snap.size(), static_cast<size_t>(kInserts));
    for (size_t i = 0; i < snap.size(); ++i) {
      Result<dyndb::Dynamic> d = snap.Get(i);
      ASSERT_TRUE(d.ok());
      EXPECT_EQ(d->value,
                Value::RecordOf({{"seq", Value::Int(static_cast<int64_t>(i))},
                                 {"tag", Value::String("r")}}));
      EXPECT_EQ(d->type, dyndb::MakeDynamic(d->value).type);
    }
    types::Type t = *types::ParseType("{seq: Int}");
    EXPECT_EQ(snap.GetScan(t).size(), snap.size());
    EXPECT_EQ(snap.GetScan(t), snap.GetViaIndex(t));
  }
  writer.join();

  // Fault-free final save of the quiesced database round-trips exactly.
  ASSERT_TRUE(persist::SaveDatabase(&vfs, path, db).ok());
  auto final_loaded = persist::LoadDatabase(&vfs, path);
  ASSERT_TRUE(final_loaded.ok()) << final_loaded.status();
  EXPECT_EQ(final_loaded->size(), static_cast<size_t>(kInserts));
  EXPECT_EQ(final_loaded->entries(), db.entries());
}

// ---------------------------------------------------------------------
// Schema compatibility across an injected crash (principle P2: type
// descriptors persist with their values).
// ---------------------------------------------------------------------

TEST(CrashMatrixTest, SchemaEvolutionLostInCrashedCommitThenReapplied) {
  const std::string path = "crash/schema.log";
  FaultVfs vfs(0x5C8E);
  types::Type v1 = *types::ParseType("{Name: String}");
  types::Type v2 = *types::ParseType("{Name: String, Age: Int}");
  types::Type view = *types::ParseType("{}");
  types::Type bad = *types::ParseType("{Name: Int}");

  {
    auto store = IntrinsicStore::Open(&vfs, path);
    ASSERT_TRUE(store.ok());
    Oid o = (*store)->heap().Allocate(
        Value::RecordOf({{"Name", Value::String("Ada")}}));
    ASSERT_TRUE((*store)->SetRootTyped("DB", o, v1).ok());
    ASSERT_TRUE((*store)->Commit().ok());

    // Enrich the schema to v2 — but the commit crashes.
    ASSERT_TRUE((*store)->OpenRootChecked("DB", v2).ok());
    EXPECT_EQ(*(*store)->RootType("DB"), v2);  // evolved in memory
    vfs.CrashAtMutatingOp(1);
    EXPECT_FALSE((*store)->Commit().ok());
  }
  vfs.PowerLoss(Fate::kLost);

  {
    // The enrichment never committed: the stored descriptor is still v1.
    auto store = IntrinsicStore::Open(&vfs, path);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_EQ(*(*store)->RootType("DB"), v1);

    // Recompilation rules against the recovered store:
    EXPECT_TRUE((*store)->OpenRootChecked("DB", v1).ok());  // identical
    EXPECT_EQ(*(*store)->RootType("DB"), v1);
    EXPECT_TRUE((*store)->OpenRootChecked("DB", view).ok());  // view
    EXPECT_EQ(*(*store)->RootType("DB"), v1);  // nothing lost
    EXPECT_EQ((*store)->OpenRootChecked("DB", bad).status().code(),
              StatusCode::kInconsistent);  // rejection

    // Enrichment, this time committed for real.
    ASSERT_TRUE((*store)->OpenRootChecked("DB", v2).ok());
    ASSERT_TRUE((*store)->Commit().ok());
  }
  vfs.PowerLoss(Fate::kLost);  // nothing unsynced should remain

  {
    auto store = IntrinsicStore::Open(&vfs, path);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_EQ(*(*store)->RootType("DB"), v2);  // P2: the type survived
    EXPECT_EQ((*store)->OpenRootChecked("DB", bad).status().code(),
              StatusCode::kInconsistent);
  }
}

// ---------------------------------------------------------------------
// WalDatabase: the write-ahead durability layer. A scripted workload of
// inserts, an extent registration, checkpoints and commits runs with a
// crash injected at every mutating VFS op (so every append, commit
// marker, fsync, checkpoint save and log rotation gets hit); recovery
// must yield exactly a committed prefix of the workload, differentially
// checked against an in-memory oracle.
// ---------------------------------------------------------------------

Value WalVal(size_t i) {
  return Value::RecordOf(
      {{"Seq", Value::Int(static_cast<int64_t>(i))},
       {"Payload", Value::String(std::string(3 + i % 5, 'w'))}});
}

types::Type WalRecT() {
  return *types::ParseType("{Seq: Int, Payload: String}");
}

/// One scripted mutation against a WalDatabase. The oracle mirrors the
/// WAL's durability bookkeeping: `floor` is the number of entries known
/// durable (covered by a synced commit marker or a completed
/// checkpoint), `pending` mirrors the open batch.
struct WalOracle {
  size_t applied_inserts = 0;  // inserts whose step returned OK
  size_t floor = 0;            // entries provably durable
  uint64_t pending = 0;        // mirrors WalDatabase::pending_in_batch
  bool extent_applied = false;

  void OnOkInsert(uint64_t every_n) {
    ++applied_inserts;
    if (++pending >= every_n) {
      floor = applied_inserts;
      pending = 0;
    }
  }
  void OnOkCheckpoint() {
    floor = applied_inserts;
    pending = 0;
  }
};

/// Checks that a recovered database is the untorn prefix of the
/// scripted insert sequence of length `size`, with every Get strategy
/// agreeing wherever the extent exists.
void ExpectWalPrefix(const dyndb::Database& db, size_t size) {
  ASSERT_EQ(db.size(), size);
  for (size_t i = 0; i < size; ++i) {
    Result<dyndb::Dynamic> d = db.Get(i);
    ASSERT_TRUE(d.ok()) << d.status();
    EXPECT_EQ(d->value, WalVal(i));
    // P2: the recovered entry still carries its type description.
    EXPECT_TRUE(types::TypeEquiv(d->type, dyndb::MakeDynamic(d->value).type));
  }
  auto via_extent = db.GetViaExtent(WalRecT());
  if (via_extent.ok()) {
    EXPECT_EQ(*via_extent, db.GetScan(WalRecT()));
    EXPECT_EQ(via_extent->size(), size);
  }
}

/// The scripted workload, parameterized over the commit policy. Steps
/// run in order until one fails (the injected crash). Returns the
/// number of steps that completed. `after_step`, when set, runs after
/// every successful step — the shipping matrix uses it to interleave
/// follower polls with the primary's mutations (FaultVfs is not
/// thread-safe, so the interleaving must be manual and deterministic).
int RunWalWorkload(persist::WalDatabase* wdb, uint64_t every_n,
                   WalOracle* oracle,
                   const std::function<void()>& after_step = {}) {
  int done = 0;
  size_t next = 0;
  auto insert = [&]() -> bool {
    if (!wdb->InsertValue(WalVal(next)).ok()) return false;
    ++next;
    oracle->OnOkInsert(every_n);
    return true;
  };
  // Interleaves inserts with an extent registration, two checkpoints
  // (one mid-batch when every_n > 1) and a final explicit commit, so
  // crash points land in every phase of the protocol.
  for (int step = 0; step < 12; ++step, ++done) {
    switch (step) {
      case 2:
        if (!wdb->RegisterExtent("recs", WalRecT()).ok()) return done;
        oracle->extent_applied = true;
        // The registration is one observed mutation in the batch; if it
        // closes the batch, the marker covers all earlier inserts too.
        if (++oracle->pending >= every_n) {
          oracle->floor = oracle->applied_inserts;
          oracle->pending = 0;
        }
        break;
      case 5:
      case 9:
        if (!wdb->Checkpoint().ok()) return done;
        oracle->OnOkCheckpoint();
        break;
      case 11:
        if (!wdb->Commit().ok()) return done;
        oracle->floor = oracle->applied_inserts;
        oracle->pending = 0;
        break;
      default:
        if (!insert()) return done;
        break;
    }
    if (after_step) after_step();
  }
  return done;
}

class WalCrashMatrixTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Policies, WalCrashMatrixTest,
                         ::testing::Values(1u, 3u),
                         [](const auto& info) {
                           return "every_n_" + std::to_string(info.param);
                         });

TEST_P(WalCrashMatrixTest, RecoversACommittedPrefixAtEveryCrashPoint) {
  const uint64_t every_n = GetParam();
  const persist::CommitPolicy policy{every_n, true};
  const std::string dir = "crash/waldb";

  // Fault-free pass: learn the op count and the final state.
  uint64_t total_ops = 0;
  size_t total_inserts = 0;
  {
    FaultVfs vfs(0x3A1);
    auto wdb = persist::WalDatabase::Open(&vfs, dir, policy);
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    WalOracle oracle;
    ASSERT_EQ(RunWalWorkload(wdb->get(), every_n, &oracle), 12);
    EXPECT_EQ(oracle.floor, oracle.applied_inserts);  // final Commit
    total_inserts = oracle.applied_inserts;
    total_ops = vfs.mutating_ops();
    ExpectWalPrefix((*wdb)->db(), total_inserts);
  }
  ASSERT_GT(total_ops, total_inserts);

  for (uint64_t k = 1; k <= total_ops; ++k) {
    for (Fate fate : kAllFates) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + ", unsynced data " +
                   FateName(fate));
      FaultVfs vfs(0x3AD5 + k * 0x9E3779B97F4A7C15ULL +
                   static_cast<uint64_t>(fate));
      vfs.CrashAtMutatingOp(k);
      WalOracle oracle;
      int done = -1;  // -1: Open itself crashed
      {
        auto wdb = persist::WalDatabase::Open(&vfs, dir, policy);
        if (wdb.ok()) done = RunWalWorkload(wdb->get(), every_n, &oracle);
        // The destructor's best-effort flush runs against the crashed
        // VFS and must fail harmlessly.
      }
      ASSERT_LT(done, 12);  // k <= total_ops: the crash always fires
      ASSERT_TRUE(vfs.crashed());
      // `done` is the index of the step the crash interrupted.
      const bool crash_in_checkpoint = done == 5 || done == 9;

      vfs.PowerLoss(fate);
      auto reopened = persist::WalDatabase::Open(&vfs, dir, policy);
      ASSERT_TRUE(reopened.ok()) << reopened.status();
      const dyndb::Database& db = (*reopened)->db();
      const persist::WalRecoveryStats& stats = (*reopened)->recovery_stats();

      if (fate == Fate::kLost) {
        // All unsynced bytes vanished: recovery lands on *exactly* the
        // oracle's durable floor — except when the crash hit a
        // checkpoint step after its atomic rename, which durably
        // covers every insert applied so far (renames are metadata
        // ops, durable immediately). Because fsync only ever runs on
        // frame-aligned content, the log tail is clean, not corrupt.
        if (crash_in_checkpoint && db.size() == oracle.applied_inserts) {
          ExpectWalPrefix(db, oracle.applied_inserts);
        } else {
          ExpectWalPrefix(db, oracle.floor);
        }
        EXPECT_FALSE(stats.corrupt_tail);
      } else {
        // The in-flight tail may have (partially) reached the log. A
        // torn or uncommitted tail is dropped; a complete one (commit
        // marker included) replays. Either way: an untorn committed
        // prefix no shorter than the floor, never beyond what ran.
        ASSERT_GE(db.size(), oracle.floor);
        ASSERT_LE(db.size(), oracle.applied_inserts + 1);
        ExpectWalPrefix(db, db.size());
      }
      // If the extent registration was applied and is durable, its
      // membership must have been rebuilt to match a full scan — that
      // is checked inside ExpectWalPrefix. Here: a database that kept
      // entries past the registration step must have kept the extent
      // too (they are covered by the same commit markers).
      if (oracle.extent_applied && fate == Fate::kLost &&
          oracle.pending == 0 && oracle.floor == oracle.applied_inserts) {
        // pending == 0 means every observed mutation — including the
        // registration — sits under a synced marker or checkpoint.
        EXPECT_TRUE(db.GetViaExtent(WalRecT()).ok());
      }

      // The recovered database must be fully usable: insert, commit,
      // reopen, and the new entry is there.
      const size_t recovered = db.size();
      ASSERT_TRUE((*reopened)->InsertValue(WalVal(recovered)).ok());
      ASSERT_TRUE((*reopened)->Commit().ok());
      reopened->reset();
      vfs.PowerLoss(Fate::kLost);
      auto again = persist::WalDatabase::Open(&vfs, dir, policy);
      ASSERT_TRUE(again.ok()) << again.status();
      ExpectWalPrefix((*again)->db(), recovered + 1);
    }
  }
}

// Property: recovering from a checkpoint plus the log suffix yields the
// same database as replaying the entire history from an empty log. Two
// WAL databases receive an identical pseudo-random mutation stream; one
// checkpoints repeatedly, the other never. After a clean close and
// reopen, their states must be indistinguishable.
TEST(WalCrashMatrixTest, CheckpointPlusReplayEqualsReplayFromEmpty) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultVfs vfs(seed);
    dbpl::testing::Rng rng(seed * 0xABCD);
    {
      auto ckpt = persist::WalDatabase::Open(&vfs, "a", persist::CommitPolicy{3, true});
      auto replay = persist::WalDatabase::Open(&vfs, "b", persist::CommitPolicy{3, true});
      ASSERT_TRUE(ckpt.ok() && replay.ok());
      int extents = 0;
      for (int i = 0; i < 60; ++i) {
        if (rng.Below(12) == 0 && extents < 3) {
          // Register the same fresh extent on both. (Registering the
          // extents at different points relative to the inserts would
          // be fine too — membership is derived, not logged.)
          std::string name = "e" + std::to_string(extents++);
          types::Type t = *types::ParseType(
              extents == 1 ? "{Name: String}" : extents == 2
                  ? "{Age: Int}" : "{Name: String, Dept: String}");
          ASSERT_TRUE((*ckpt)->RegisterExtent(name, t).ok());
          ASSERT_TRUE((*replay)->RegisterExtent(name, std::move(t)).ok());
        } else {
          Value v = dbpl::testing::RandomRecord(rng);
          ASSERT_TRUE((*ckpt)->InsertValue(v).ok());
          ASSERT_TRUE((*replay)->InsertValue(std::move(v)).ok());
        }
        if (i % 17 == 9) {
          ASSERT_TRUE((*ckpt)->Checkpoint().ok());
        }
      }
      ASSERT_GE((*ckpt)->checkpoints_taken(), 1u);
      // Clean close: destructors flush the open batches.
    }

    auto ckpt = persist::WalDatabase::Open(&vfs, "a", persist::CommitPolicy{3, true});
    auto replay = persist::WalDatabase::Open(&vfs, "b", persist::CommitPolicy{3, true});
    ASSERT_TRUE(ckpt.ok() && replay.ok());
    EXPECT_TRUE((*ckpt)->recovery_stats().had_checkpoint);
    EXPECT_FALSE((*replay)->recovery_stats().had_checkpoint);

    // Same entries in the same order, each with its carried type...
    const dyndb::Database& a = (*ckpt)->db();
    const dyndb::Database& b = (*replay)->db();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.Get(i)->value, b.Get(i)->value);
      EXPECT_TRUE(types::TypeEquiv(a.Get(i)->type, b.Get(i)->type));
    }
    // ...the same extents, with identical derived membership...
    dyndb::Database::Snapshot sa = a.GetSnapshot();
    dyndb::Database::Snapshot sb = b.GetSnapshot();
    ASSERT_EQ(sa.ExtentNames(), sb.ExtentNames());
    for (const auto& [name, type] : sa.Extents()) {
      auto ea = sa.GetViaExtent(type);
      auto eb = sb.GetViaExtent(type);
      ASSERT_TRUE(ea.ok() && eb.ok()) << name;
      EXPECT_EQ(*ea, *eb) << name;
      EXPECT_EQ(*ea, sa.GetScan(type)) << name;
    }
    // ...and the same answers to queries neither side has an extent for.
    types::Type probe = *types::ParseType("{Age: Int}");
    EXPECT_EQ(sa.GetScan(probe), sb.GetScan(probe));
    EXPECT_EQ(sa.GetViaIndex(probe), sb.GetViaIndex(probe));
  }
}

// ---------------------------------------------------------------------
// WAL shipping under crashes: the matrix above re-run with live
// followers attached. The primary dies at every mutating VFS op under
// every unsynced-data fate while an eagerly-polling follower tails it
// (and a lazy one lags at zero); the invariants are
//
//  (1) at every point — before, during and after the crash — each
//      follower holds an untorn committed prefix of the scripted
//      history, at a commit/checkpoint boundary: it never observes an
//      uncommitted, torn, or reordered batch;
//  (2) a follower is always a prefix of whatever the primary recovers
//      to (only *synced* bytes ship, so nothing a follower applied can
//      be taken back by the power loss);
//  (3) after recovery, every follower re-attached to the new
//      incarnation converges to exactly its state, and the pair keeps
//      shipping new writes.
// ---------------------------------------------------------------------

/// Follower ≡ primary, including derived reads and the epoch.
void ExpectConverged(const dyndb::Database& primary,
                     const dyndb::Database& follower) {
  dyndb::Database::Snapshot p = primary.GetSnapshot();
  dyndb::Database::Snapshot f = follower.GetSnapshot();
  ASSERT_EQ(p.size(), f.size());
  EXPECT_EQ(p.epoch(), f.epoch());
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.Get(i)->value, f.Get(i)->value);
  }
  ASSERT_EQ(p.ExtentNames(), f.ExtentNames());
  for (const auto& [name, type] : p.Extents()) {
    auto pe = p.GetViaExtent(type);
    auto fe = f.GetViaExtent(type);
    ASSERT_TRUE(pe.ok() && fe.ok()) << name;
    EXPECT_EQ(*pe, *fe) << name;
  }
}

/// A wire attachment for the crash matrix: a workers=1 dbpl-serve
/// server over the primary plus a RemoteShipper adopted from the other
/// end of a socketpair. Every RPC is synchronous and the single worker
/// serves it while the test thread blocks, so the (thread-compatible,
/// not thread-safe) FaultVfs is only ever touched by one thread at a
/// time; and shipping reads don't count as mutating ops, so the
/// crash-point numbering is identical with or without the tap.
struct WireTap {
  std::unique_ptr<serve::Server> server;
  std::unique_ptr<serve::RemoteShipper> shipper;
};

Result<WireTap> OpenWireTap(persist::WalDatabase* wdb) {
  WireTap tap;
  serve::ServeOptions opts;
  opts.workers = 1;
  DBPL_ASSIGN_OR_RETURN(tap.server, serve::Server::Start(wdb, opts));
  DBPL_ASSIGN_OR_RETURN(auto pair, serve::Socket::Pair());
  DBPL_RETURN_IF_ERROR(tap.server->AdoptConnection(std::move(pair.first)));
  DBPL_ASSIGN_OR_RETURN(tap.shipper,
                        serve::RemoteShipper::Adopt(std::move(pair.second)));
  return tap;
}

TEST_P(WalCrashMatrixTest, FollowersConvergeAtEveryCrashPoint) {
  const uint64_t every_n = GetParam();
  const persist::CommitPolicy policy{every_n, true};
  const std::string dir = "crash/waldb_ship";

  // Fault-free pass: learn the op count (polling is read-only, so the
  // mutating-op numbering matches the faulted passes exactly).
  uint64_t total_ops = 0;
  {
    FaultVfs vfs(0x51B);
    auto wdb = persist::WalDatabase::Open(&vfs, dir, policy);
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    persist::Replica follower;
    ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());
    auto tap = OpenWireTap(wdb->get());
    ASSERT_TRUE(tap.ok()) << tap.status();
    persist::Replica wire;
    ASSERT_TRUE(wire.Attach(tap->shipper.get()).ok());
    WalOracle oracle;
    ASSERT_EQ(RunWalWorkload(wdb->get(), every_n, &oracle,
                             [&] {
                               ASSERT_TRUE(follower.Poll().ok());
                               ASSERT_TRUE(wire.Poll().ok());
                             }),
              12);
    total_ops = vfs.mutating_ops();
    ExpectConverged((*wdb)->db(), follower.db());
    ExpectConverged((*wdb)->db(), wire.db());
    tap->server->Stop();
  }

  for (uint64_t k = 1; k <= total_ops; ++k) {
    for (Fate fate : kAllFates) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + ", unsynced data " +
                   FateName(fate));
      FaultVfs vfs(0x5EED + k * 0x9E3779B97F4A7C15ULL +
                   static_cast<uint64_t>(fate));
      vfs.CrashAtMutatingOp(k);
      WalOracle oracle;
      persist::Replica eager;  // polls after every workload step
      persist::Replica lazy;   // never polls until after recovery
      persist::Replica wire;   // eager, but across the socketpair
      size_t eager_floor = 0;  // follower sizes must be monotone
      size_t wire_floor = 0;
      {
        auto wdb = persist::WalDatabase::Open(&vfs, dir, policy);
        if (wdb.ok()) {
          ASSERT_TRUE(eager.Attach((*wdb)->shipper()).ok());
          ASSERT_TRUE(lazy.Attach((*wdb)->shipper()).ok());
          auto tap = OpenWireTap(wdb->get());
          ASSERT_TRUE(tap.ok()) << tap.status();
          ASSERT_TRUE(wire.Attach(tap->shipper.get()).ok());
          RunWalWorkload(wdb->get(), every_n, &oracle, [&] {
            // Invariant (1), live: polls may fail once the VFS has
            // crashed — the followers must simply stop advancing, not
            // regress or tear. The wire follower sees the primary's
            // read errors in-band and must absorb them identically.
            (void)eager.Poll();
            const size_t size = eager.db().size();
            ASSERT_GE(size, eager_floor);
            eager_floor = size;
            ExpectWalPrefix(eager.db(), size);
            ASSERT_LE(size, oracle.applied_inserts + 1);
            (void)wire.Poll();
            const size_t wsize = wire.db().size();
            ASSERT_GE(wsize, wire_floor);
            wire_floor = wsize;
            ExpectWalPrefix(wire.db(), wsize);
            ASSERT_LE(wsize, oracle.applied_inserts + 1);
          });
          // Stop the tap before the primary dies; one more poll, now
          // with a dead transport, must be absorbed cleanly too.
          tap->server->Stop();
          (void)wire.Poll();
          ExpectWalPrefix(wire.db(), wire.db().size());
        }
        ASSERT_TRUE(vfs.crashed());
        // One more poll against the crashed VFS: reads hit stale
        // handles; the follower must absorb that cleanly.
        (void)eager.Poll();
        ExpectWalPrefix(eager.db(), eager.db().size());
      }

      vfs.PowerLoss(fate);
      auto reopened = persist::WalDatabase::Open(&vfs, dir, policy);
      ASSERT_TRUE(reopened.ok()) << reopened.status();
      const dyndb::Database& db = (*reopened)->db();

      // Invariant (2): all followers are prefixes of the recovered
      // state — the fate of unsynced bytes cannot reach them.
      for (persist::Replica* f : {&eager, &lazy, &wire}) {
        ASSERT_LE(f->db().size(), db.size());
        ExpectWalPrefix(f->db(), f->db().size());
        ASSERT_LE(f->Epoch(), db.epoch());
      }

      // Invariant (3): re-attach to the recovered incarnation and
      // converge, then keep shipping fresh writes. The wire follower
      // re-attaches through a fresh tap — the "follower reconnects to
      // the restarted primary" path.
      auto tap2 = OpenWireTap(reopened->get());
      ASSERT_TRUE(tap2.ok()) << tap2.status();
      ASSERT_TRUE(eager.Attach((*reopened)->shipper()).ok());
      ASSERT_TRUE(lazy.Attach((*reopened)->shipper()).ok());
      ASSERT_TRUE(wire.Attach(tap2->shipper.get()).ok());
      ExpectConverged(db, eager.db());
      ExpectConverged(db, lazy.db());
      ExpectConverged(db, wire.db());

      const size_t recovered = db.size();
      ASSERT_TRUE((*reopened)->InsertValue(WalVal(recovered)).ok());
      ASSERT_TRUE((*reopened)->Commit().ok());
      ASSERT_TRUE(eager.Poll().ok());
      ExpectConverged(db, eager.db());
      ASSERT_EQ(eager.db().size(), recovered + 1);
      ASSERT_TRUE(wire.Poll().ok());
      ExpectConverged(db, wire.db());
      ASSERT_EQ(wire.db().size(), recovered + 1);
      tap2->server->Stop();
    }
  }
}

// ---------------------------------------------------------------------
// Sharded WAL crash matrix: the same discipline against a K=3 primary
// (per-shard segments, group commit, sharded checkpoint rotation),
// with an eagerly-polling follower attached throughout. Entry ids are
// shard-encoded, so the invariants are stated over the *set* of
// recovered values (each scripted value exactly once, no torn or alien
// entry) rather than dense id prefixes. The policy is sync-every-1, so
// the oracle is simply the count of inserts that returned OK: recovery
// must land on exactly that set, plus at most the one write the crash
// interrupted (whose record may have durably reached its lane).
// ---------------------------------------------------------------------

/// Follower ≡ primary under shard-encoded ids: same (id, value)
/// pairs, same extents, same epoch. (`ExpectConverged` above walks
/// dense K=1 ids and cannot be used here.)
void ExpectShardedConverged(const dyndb::Database& primary,
                            const dyndb::Database& follower) {
  ASSERT_EQ(primary.size(), follower.size());
  EXPECT_EQ(primary.epoch(), follower.epoch());
  std::map<dyndb::Database::EntryId, Value> entries;
  primary.GetSnapshot().ForEachEntry(
      [&](dyndb::Database::EntryId id, const dyndb::Dynamic& d) {
        entries.emplace(id, d.value);
      });
  follower.GetSnapshot().ForEachEntry(
      [&](dyndb::Database::EntryId id, const dyndb::Dynamic& d) {
        auto it = entries.find(id);
        ASSERT_NE(it, entries.end()) << "follower-only id " << id;
        EXPECT_EQ(it->second, d.value) << "divergent value at id " << id;
      });
  EXPECT_EQ(primary.ExtentNames(), follower.ExtentNames());
}

/// The database holds exactly {WalVal(0) .. WalVal(size-1)}, each
/// once, and extent membership (when registered) matches a full scan.
void ExpectShardedWalSet(const dyndb::Database& db) {
  std::set<int64_t> seen;
  db.GetSnapshot().ForEachEntry(
      [&](dyndb::Database::EntryId, const dyndb::Dynamic& d) {
        const Value* seq = d.value.FindField("Seq");
        ASSERT_NE(seq, nullptr);
        EXPECT_EQ(d.value, WalVal(static_cast<size_t>(seq->AsInt())));
        EXPECT_TRUE(seen.insert(seq->AsInt()).second)
            << "duplicate Seq " << seq->AsInt();
      });
  ASSERT_EQ(seen.size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(seen.count(static_cast<int64_t>(i)), 1u)
        << "recovered set is not the scripted prefix: missing " << i;
  }
  auto via_extent = db.GetViaExtent(WalRecT());
  if (via_extent.ok()) {
    EXPECT_EQ(via_extent->size(),
              db.GetSnapshot().GetScan(WalRecT()).size());
  }
}

TEST(WalCrashMatrixTest, ShardedPrimaryRecoversAtEveryCrashPoint) {
  const persist::WalOptions options{{1, true}, 3};
  const std::string dir = "crash/waldb_sharded";

  // The scripted workload: inserts with a registration and two
  // checkpoints interleaved (so crash points land in lane appends,
  // group syncs, the checkpoint save and every lane's rotation).
  // Returns the number of inserts that returned OK.
  auto run = [](persist::WalDatabase* wdb,
                const std::function<void()>& after_step) -> size_t {
    size_t applied = 0;
    for (int step = 0; step < 12; ++step) {
      switch (step) {
        case 2:
          if (!wdb->RegisterExtent("recs", WalRecT()).ok()) return applied;
          break;
        case 5:
        case 9:
          if (!wdb->Checkpoint().ok()) return applied;
          break;
        default:
          if (!wdb->InsertValue(WalVal(applied)).ok()) return applied;
          ++applied;
          break;
      }
      if (after_step) after_step();
    }
    return applied;
  };

  // Fault-free pass: learn the op count and the insert total.
  uint64_t total_ops = 0;
  size_t total_inserts = 0;
  {
    FaultVfs vfs(0x5A4D);
    auto wdb = persist::WalDatabase::Open(&vfs, dir, options);
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    persist::Replica follower;
    ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());
    total_inserts = run(wdb->get(),
                        [&] { ASSERT_TRUE(follower.Poll().ok()); });
    ASSERT_EQ(total_inserts, 9u);
    total_ops = vfs.mutating_ops();
    ExpectShardedWalSet((*wdb)->db());
    ExpectShardedConverged((*wdb)->db(), follower.db());
  }

  for (uint64_t k = 1; k <= total_ops; ++k) {
    for (Fate fate : kAllFates) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + ", unsynced data " +
                   FateName(fate));
      FaultVfs vfs(0xD157 + k * 0x9E3779B97F4A7C15ULL +
                   static_cast<uint64_t>(fate));
      vfs.CrashAtMutatingOp(k);
      persist::Replica eager;
      size_t applied = 0;
      size_t eager_floor = 0;
      {
        auto wdb = persist::WalDatabase::Open(&vfs, dir, options);
        if (wdb.ok()) {
          ASSERT_TRUE(eager.Attach((*wdb)->shipper()).ok());
          applied = run(wdb->get(), [&] {
            // The follower may fail to poll once the VFS has crashed;
            // it must stop advancing, never regress or tear.
            (void)eager.Poll();
            const size_t size = eager.db().size();
            ASSERT_GE(size, eager_floor);
            eager_floor = size;
            ExpectShardedWalSet(eager.db());
          });
        }
        ASSERT_TRUE(vfs.crashed());
        (void)eager.Poll();
        ExpectShardedWalSet(eager.db());
      }

      vfs.PowerLoss(fate);
      auto reopened = persist::WalDatabase::Open(&vfs, dir, options);
      ASSERT_TRUE(reopened.ok()) << reopened.status();
      const dyndb::Database& db = (*reopened)->db();
      ASSERT_EQ(db.shards(), 3);

      // Sync-every-1: everything that returned OK is durable. Under
      // kLost the in-flight write's unsynced bytes vanish; under the
      // surviving fates its record (+ marker) may have reached a lane
      // and then replays — but never anything torn or beyond it.
      if (fate == Fate::kLost) {
        ASSERT_EQ(db.size(), applied);
      } else {
        ASSERT_GE(db.size(), applied);
        ASSERT_LE(db.size(), applied + 1);
      }
      ExpectShardedWalSet(db);

      // The follower is a prefix of the recovered primary and
      // re-converges to it, then keeps shipping fresh writes.
      ASSERT_LE(eager.db().size(), db.size());
      ASSERT_TRUE(eager.Attach((*reopened)->shipper()).ok());
      ExpectShardedConverged(db, eager.db());

      const size_t recovered = db.size();
      ASSERT_TRUE((*reopened)->InsertValue(WalVal(recovered)).ok());
      ASSERT_TRUE((*reopened)->Commit().ok());
      ASSERT_TRUE(eager.Poll().ok());
      ExpectShardedConverged(db, eager.db());
      ASSERT_EQ(eager.db().size(), recovered + 1);
    }
  }
}

}  // namespace
}  // namespace dbpl
