// The design-choice test behind DESIGN.md's storage section: why the
// intrinsic store sits on a write-ahead log rather than in-place page
// updates. `PagedStore` is the in-place baseline; these tests show
// where it is equivalent, and the crash-semantics difference that
// justifies the log.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "storage/kv_store.h"
#include "storage/paged_store.h"

namespace dbpl::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/dbpl_ablation_" + name + "_" +
         std::to_string(::getpid());
}

struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~ScopedFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(PagedStoreTest, PutGetDeleteRoundTrip) {
  ScopedFile file(TempPath("basic"));
  auto store = PagedStore::Open(file.path);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE((*store)->Put("a", "1").ok());
  ASSERT_TRUE((*store)->Put("b", "2").ok());
  EXPECT_EQ(*(*store)->Get("a"), "1");
  EXPECT_EQ(*(*store)->Get("b"), "2");
  ASSERT_TRUE((*store)->Put("a", "updated").ok());
  EXPECT_EQ(*(*store)->Get("a"), "updated");
  ASSERT_TRUE((*store)->Delete("b").ok());
  EXPECT_EQ((*store)->Get("b").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->Delete("b").code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->size(), 1u);
}

TEST(PagedStoreTest, SurvivesReopen) {
  ScopedFile file(TempPath("reopen"));
  {
    auto store = PagedStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("k", "v").ok());
    ASSERT_TRUE((*store)->Put("gone", "x").ok());
    ASSERT_TRUE((*store)->Delete("gone").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto store = PagedStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->Get("k"), "v");
  EXPECT_FALSE((*store)->Contains("gone"));
}

TEST(PagedStoreTest, ReusesFreedPages) {
  ScopedFile file(TempPath("reuse"));
  auto store = PagedStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
  }
  uint64_t pages = (*store)->page_count();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE((*store)->Delete("k" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE((*store)->Put("n" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ((*store)->page_count(), pages);  // no growth: pages reused
}

TEST(PagedStoreTest, OversizedRecordRejected) {
  ScopedFile file(TempPath("oversized"));
  auto store = PagedStore::Open(file.path, 256);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Put("k", std::string(1024, 'x')).code(),
            StatusCode::kInvalidArgument);
}

TEST(PagedStoreTest, CacheServesRepeatedReads) {
  ScopedFile file(TempPath("cache"));
  auto store = PagedStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("hot", "value").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*store)->Get("hot").ok());
  }
  EXPECT_GE((*store)->cache_stats().hits, 9u);
}

// The ablation point, demonstrated: an in-place paged store can tear a
// multi-record update across a crash; the WAL-backed KvStore cannot.
TEST(StorageAblationTest, PagedStoreTearsMultiRecordUpdates) {
  ScopedFile file(TempPath("torn"));
  {
    auto store = PagedStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("x", "old").ok());
    ASSERT_TRUE((*store)->Put("y", "old").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    // A "transaction" updating both records — crash after the first
    // page reaches disk (simulated by flushing one put and dropping
    // the store before the second is staged).
    ASSERT_TRUE((*store)->Put("x", "new").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Put("y", "new").ok());
    // crash: no flush
  }
  auto store = PagedStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  // Torn state: x is new, y is old. No invariant can rely on the two
  // being updated together.
  EXPECT_EQ(*(*store)->Get("x"), "new");
  EXPECT_EQ(*(*store)->Get("y"), "old");
}

TEST(StorageAblationTest, KvStoreNeverTearsABatch) {
  ScopedFile file(TempPath("atomic"));
  {
    auto store = KvStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    WriteBatch init;
    init.Put("x", "old");
    init.Put("y", "old");
    ASSERT_TRUE((*store)->Apply(init).ok());
    WriteBatch update;
    update.Put("x", "new");
    update.Put("y", "new");
    ASSERT_TRUE((*store)->Apply(update).ok());
  }
  // Crash simulation at *every* truncation point of the second batch:
  // recovery yields either both old or both new, never a mix.
  off_t full_size;
  {
    int fd = ::open(file.path.c_str(), O_RDONLY);
    full_size = ::lseek(fd, 0, SEEK_END);
    ::close(fd);
  }
  // Copy the full log, truncate at each point, recover, assert.
  std::string scratch = file.path + ".scratch";
  std::vector<char> image(static_cast<size_t>(full_size));
  {
    std::FILE* f = std::fopen(file.path.c_str(), "rb");
    ASSERT_EQ(std::fread(image.data(), 1, image.size(), f), image.size());
    std::fclose(f);
  }
  for (off_t cut = 0; cut <= full_size; cut += 7) {
    {
      std::FILE* f = std::fopen(scratch.c_str(), "wb");
      std::fwrite(image.data(), 1, static_cast<size_t>(cut), f);
      std::fclose(f);
    }
    auto store = KvStore::Open(scratch);
    ASSERT_TRUE(store.ok()) << "cut=" << cut;
    bool has_x = (*store)->Contains("x");
    bool has_y = (*store)->Contains("y");
    ASSERT_EQ(has_x, has_y) << "cut=" << cut;
    if (has_x) {
      EXPECT_EQ(*(*store)->Get("x"), *(*store)->Get("y")) << "cut=" << cut;
    }
  }
  std::remove(scratch.c_str());
}

}  // namespace
}  // namespace dbpl::storage
