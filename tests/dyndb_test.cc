#include <gtest/gtest.h>

#include <algorithm>

#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "types/parse.h"
#include "types/subtype.h"

namespace dbpl::dyndb {
namespace {

using core::Value;
using types::ParseType;
using types::Type;

Type PersonT() { return *ParseType("{Name: String}"); }
Type EmployeeT() { return *ParseType("{Name: String, Empno: Int}"); }
Type StudentT() { return *ParseType("{Name: String, StudentId: Int}"); }

Value Person(const char* name) {
  return Value::RecordOf({{"Name", Value::String(name)}});
}
Value Employee(const char* name, int64_t empno) {
  return Value::RecordOf(
      {{"Name", Value::String(name)}, {"Empno", Value::Int(empno)}});
}
Value Student(const char* name, int64_t sid) {
  return Value::RecordOf(
      {{"Name", Value::String(name)}, {"StudentId", Value::Int(sid)}});
}

// ---------------------------------------------------------------------
// Dynamic: the paper's Amber example, verbatim.
// ---------------------------------------------------------------------

TEST(DynamicTest, PaperCoerceExample) {
  // let d = dynamic 3;
  Dynamic d = MakeDynamic(Value::Int(3));
  EXPECT_EQ(d.type, Type::Int());
  // let i = coerce d to Int;  -- i is bound to 3
  Result<Value> i = Coerce(d, Type::Int());
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(*i, Value::Int(3));
  // let s = coerce d to String;  -- raises a (run-time) type exception
  Result<Value> s = Coerce(d, Type::String());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kTypeError);
}

TEST(DynamicTest, CoerceUpTheHierarchy) {
  Dynamic d = MakeDynamic(Employee("J Doe", 1234));
  // An Employee value coerces to Person (subsumption)...
  EXPECT_TRUE(Coerce(d, PersonT()).ok());
  // ...and to its own type, and to Top.
  EXPECT_TRUE(Coerce(d, EmployeeT()).ok());
  EXPECT_TRUE(Coerce(d, Type::Top()).ok());
  // ...but not down or sideways.
  EXPECT_FALSE(Coerce(MakeDynamic(Person("P")), EmployeeT()).ok());
  EXPECT_FALSE(Coerce(d, StudentT()).ok());
}

TEST(DynamicTest, MakeDynamicAsChecksDeclaration) {
  // Declaring an employee value at type Person generalizes its carried
  // type (a view, as in the paper's schema discussion).
  Result<Dynamic> d = MakeDynamicAs(Employee("J Doe", 1), PersonT());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->type, PersonT());
  // With the carried type generalized, coercion back down now fails:
  // the type, not the value, governs.
  EXPECT_FALSE(Coerce(*d, EmployeeT()).ok());
  // A false declaration is rejected outright.
  EXPECT_FALSE(MakeDynamicAs(Person("P"), EmployeeT()).ok());
}

TEST(DynamicTest, TypeOfDynamicExposesCarriedType) {
  Dynamic d = MakeDynamic(Value::Int(3));
  EXPECT_EQ(TypeOfDynamic(d), Type::Int());
}

TEST(DynamicTest, SealProducesExistentialPackage) {
  Dynamic d = MakeDynamic(Employee("J Doe", 1));
  Result<Dynamic> pkg = Seal(d, PersonT());
  ASSERT_TRUE(pkg.ok());
  EXPECT_EQ(pkg->type.kind(), types::TypeKind::kExists);
  EXPECT_EQ(pkg->type.bound(), PersonT());
  // The package still coerces to anything its bound guarantees.
  EXPECT_TRUE(Coerce(*pkg, PersonT()).ok());
  // Sealing below an unrelated bound fails.
  EXPECT_FALSE(Seal(d, StudentT()).ok());
}

// ---------------------------------------------------------------------
// Database + generic Get.
// ---------------------------------------------------------------------

Database MakeMixedDb() {
  Database db;
  db.MustInsertValue(Person("p1"));
  db.MustInsertValue(Person("p2"));
  db.MustInsertValue(Employee("e1", 1));
  db.MustInsertValue(Employee("e2", 2));
  db.MustInsertValue(Employee("e3", 3));
  db.MustInsertValue(Student("s1", 100));
  db.MustInsertValue(Value::Int(42));  // the db is deliberately unconstrained
  db.MustInsertValue(Value::String("noise"));
  return db;
}

TEST(DatabaseTest, GetScanDerivesExtents) {
  Database db = MakeMixedDb();
  EXPECT_EQ(db.GetScan(PersonT()).size(), 6u);    // persons ∪ employees ∪ students
  EXPECT_EQ(db.GetScan(EmployeeT()).size(), 3u);
  EXPECT_EQ(db.GetScan(StudentT()).size(), 1u);
  EXPECT_EQ(db.GetScan(Type::Int()).size(), 1u);
  EXPECT_EQ(db.GetScan(Type::Top()).size(), 8u);
}

TEST(DatabaseTest, ExtentInclusionFollowsTypeHierarchy) {
  // getPersons always returns a larger list than getEmployees, and the
  // employees are all persons — the containment the paper derives from
  // the type hierarchy alone.
  Database db = MakeMixedDb();
  auto persons = db.GetScan(PersonT());
  auto employees = db.GetScan(EmployeeT());
  EXPECT_GE(persons.size(), employees.size());
  for (const auto& e : employees) {
    EXPECT_NE(std::find(persons.begin(), persons.end(), e), persons.end());
  }
}

TEST(DatabaseTest, AllStrategiesAgree) {
  Database db;
  ASSERT_TRUE(db.RegisterExtent("persons", PersonT()).ok());
  ASSERT_TRUE(db.RegisterExtent("employees", EmployeeT()).ok());
  db.MustInsertValue(Person("p1"));
  db.MustInsertValue(Employee("e1", 1));
  db.MustInsertValue(Employee("e2", 2));
  db.MustInsertValue(Student("s1", 7));
  db.MustInsertValue(Value::Int(5));

  for (const Type& t : {PersonT(), EmployeeT()}) {
    auto scan = db.GetScan(t);
    auto index = db.GetViaIndex(t);
    Result<std::vector<Value>> extent = db.GetViaExtent(t);
    ASSERT_TRUE(extent.ok());
    auto sort_values = [](std::vector<Value>& vs) {
      std::sort(vs.begin(), vs.end(), [](const Value& a, const Value& b) {
        return core::Compare(a, b) < 0;
      });
    };
    sort_values(scan);
    sort_values(index);
    sort_values(*extent);
    EXPECT_EQ(scan, index) << t.ToString();
    EXPECT_EQ(scan, *extent) << t.ToString();
  }
}

TEST(DatabaseTest, RetroactiveExtentRegistration) {
  Database db = MakeMixedDb();
  ASSERT_TRUE(db.RegisterExtent("employees", EmployeeT()).ok());
  Result<std::vector<Value>> ext = db.GetViaExtent(EmployeeT());
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(ext->size(), 3u);
  // New inserts are indexed incrementally.
  db.MustInsertValue(Employee("e4", 4));
  EXPECT_EQ(db.GetViaExtent(EmployeeT())->size(), 4u);
}

TEST(DatabaseTest, UnregisteredExtentIsNotFound) {
  Database db = MakeMixedDb();
  EXPECT_EQ(db.GetViaExtent(EmployeeT()).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(db.RegisterExtent("e", EmployeeT()).ok());
  EXPECT_EQ(db.RegisterExtent("e", PersonT()).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, GetPackagesReturnsExistentials) {
  Database db = MakeMixedDb();
  auto pkgs = db.GetPackages(PersonT());
  EXPECT_EQ(pkgs.size(), 6u);
  for (const auto& p : pkgs) {
    EXPECT_EQ(p.type.kind(), types::TypeKind::kExists);
    // Every package coerces to Person: the static guarantee of
    // List[∃t ≤ Person. t].
    EXPECT_TRUE(Coerce(p, PersonT()).ok());
  }
}

TEST(DatabaseTest, IndexGroupsByPrincipalType) {
  Database db = MakeMixedDb();
  // p1/p2 share a type; e1/e2/e3 share a type; s1, Int, String: 5 total.
  EXPECT_EQ(db.DistinctTypeCount(), 5u);
}

TEST(DatabaseTest, EntryLookup) {
  Database db;
  auto id = db.MustInsertValue(Value::Int(7));
  Result<Dynamic> d = db.Get(id);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->value, Value::Int(7));
  EXPECT_EQ(db.Get(999).status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, GetRelationAdmitsUnderSubsumption) {
  Database db;
  db.MustInsertValue(Person("J Doe"));
  db.MustInsertValue(Employee("J Doe", 7));  // refines the bare Person
  db.MustInsertValue(Person("A Roe"));
  core::GRelation r = db.GetRelation(PersonT());
  // The Employee record subsumes the bare {Name: "J Doe"}.
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Covers(Person("J Doe")));
  EXPECT_TRUE(r.Contains(Employee("J Doe", 7)));
  ASSERT_TRUE(r.CheckInvariant().ok());
}

TEST(DatabaseTest, JoinExtentsIsGeneralizedJoinOfDerivedExtents) {
  Database db;
  db.MustInsertValue(Employee("J Doe", 7));
  db.MustInsertValue(Student("J Doe", 42));
  db.MustInsertValue(Student("A Roe", 43));
  // Get(Employee) ⋈ Get(Student): working students.
  Result<core::GRelation> joined =
      db.JoinExtents(EmployeeT(), StudentT());
  ASSERT_TRUE(joined.ok()) << joined.status().message();
  EXPECT_EQ(joined->size(), 1u);
  EXPECT_TRUE(joined->Contains(
      Value::RecordOf({{"Name", Value::String("J Doe")},
                       {"Empno", Value::Int(7)},
                       {"StudentId", Value::Int(42)}})));
}

TEST(DatabaseTest, MonotonicityOfGetAcrossHierarchy) {
  // T ≤ U ⟹ Get(T) ⊆ Get(U), for every pair in a chain.
  Database db = MakeMixedDb();
  std::vector<Type> chain = {EmployeeT(), PersonT(),
                             *ParseType("{}"), Type::Top()};
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    ASSERT_TRUE(types::IsSubtype(chain[i], chain[i + 1]));
    auto lo = db.GetScan(chain[i]);
    auto hi = db.GetScan(chain[i + 1]);
    for (const auto& v : lo) {
      EXPECT_NE(std::find(hi.begin(), hi.end(), v), hi.end());
    }
  }
}

// ---------------------------------------------------------------------
// Regression: GetViaExtent must find an extent registered under any
// *equivalent* spelling of the query type, not only the exact syntax it
// was registered with. (The original lookup was purely syntactic, so a
// μ-type queried via its unfolding — or an alpha-variant — answered
// NotFound even though the extent existed.)
// ---------------------------------------------------------------------

Type MuListT() {
  return Type::Mu("x",
                  Type::RecordOf({{"next", Type::Var("x")},
                                  {"val", Type::Int()}}));
}

/// One unfolding of MuListT: {next: μx.{next: x, val: Int}, val: Int}.
Type MuListUnfoldedT() {
  return Type::RecordOf({{"next", MuListT()}, {"val", Type::Int()}});
}

/// An alpha-variant of MuListT (bound variable renamed).
Type MuListAlphaT() {
  return Type::Mu("y",
                  Type::RecordOf({{"next", Type::Var("y")},
                                  {"val", Type::Int()}}));
}

TEST(DatabaseTest, GetViaExtentFindsEquivalentSpellings) {
  ASSERT_TRUE(types::TypeEquiv(MuListT(), MuListUnfoldedT()));
  ASSERT_TRUE(types::TypeEquiv(MuListT(), MuListAlphaT()));

  Database db = MakeMixedDb();
  ASSERT_TRUE(db.RegisterExtent("mulist", MuListT()).ok());
  // Equivalent-but-different spellings all resolve to the registered
  // extent — empty is fine, NotFound is the bug.
  for (const Type& q : {MuListT(), MuListUnfoldedT(), MuListAlphaT()}) {
    Result<std::vector<Value>> got = db.GetViaExtent(q);
    ASSERT_TRUE(got.ok()) << q.ToString() << ": " << got.status().message();
    EXPECT_TRUE(got->empty());
  }
  // An inequivalent type is still NotFound.
  EXPECT_EQ(db.GetViaExtent(EmployeeT()).status().code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, GetViaExtentEquivalenceBothRegistrationOrders) {
  // Register under the *unfolded* spelling, query via the folded μ and
  // the alpha-variant — the direction the syntactic fast path cannot
  // serve — and agreement with the other strategies holds throughout.
  Database db;
  ASSERT_TRUE(db.RegisterExtent("unfolded", MuListUnfoldedT()).ok());
  db.MustInsertValue(Person("p1"));
  db.MustInsertValue(Value::Int(3));
  for (const Type& q : {MuListT(), MuListAlphaT(), MuListUnfoldedT()}) {
    Result<std::vector<Value>> got = db.GetViaExtent(q);
    ASSERT_TRUE(got.ok()) << q.ToString();
    EXPECT_EQ(*got, db.GetScan(q)) << q.ToString();
    EXPECT_EQ(*got, db.GetViaIndex(q)) << q.ToString();
  }
  // Registering the equivalent folded spelling under another name is
  // allowed (names, not types, are the registry key).
  EXPECT_TRUE(db.RegisterExtent("folded", MuListT()).ok());
  EXPECT_TRUE(db.GetViaExtent(MuListAlphaT()).ok());
}

TEST(DatabaseTest, GetViaExtentExactSpellingStillFastPathCorrect) {
  // Sanity for the exact-match fast path next to the fallback: the
  // extent registered under PersonT answers PersonT queries with the
  // right members after interleaved inserts.
  Database db;
  ASSERT_TRUE(db.RegisterExtent("persons", PersonT()).ok());
  db.MustInsertValue(Person("p1"));
  db.MustInsertValue(Value::String("noise"));
  db.MustInsertValue(Employee("e1", 1));
  Result<std::vector<Value>> got = db.GetViaExtent(PersonT());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 2u);
}

}  // namespace
}  // namespace dbpl::dyndb
