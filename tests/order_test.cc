#include "core/order.h"

#include <gtest/gtest.h>

#include "core/value.h"
#include "test_util.h"

namespace dbpl::core {
namespace {

Value Str(const char* s) { return Value::String(s); }

// The three objects from the paper's "Inheritance on Values" section,
// verbatim.
Value PaperO1() {
  return Value::RecordOf(
      {{"Name", Str("J Doe")},
       {"Address", Value::RecordOf({{"City", Str("Austin")}})}});
}
Value PaperO2() {
  return Value::RecordOf(
      {{"Name", Str("J Doe")},
       {"Address", Value::RecordOf({{"City", Str("Austin")}})},
       {"Emp_no", Value::Int(1234)}});
}
Value PaperO3() {
  return Value::RecordOf(
      {{"Name", Str("J Doe")},
       {"Address", Value::RecordOf(
                       {{"City", Str("Austin")}, {"Zip", Value::Int(78759)}})}});
}

TEST(OrderTest, PaperExampleOrdering) {
  // o1 ⊑ o2 (a new field was added) and o1 ⊑ o3 (an existing field was
  // better defined); o2 and o3 are incomparable.
  EXPECT_TRUE(LessEq(PaperO1(), PaperO2()));
  EXPECT_TRUE(LessEq(PaperO1(), PaperO3()));
  EXPECT_FALSE(LessEq(PaperO2(), PaperO1()));
  EXPECT_FALSE(LessEq(PaperO3(), PaperO1()));
  EXPECT_FALSE(LessEq(PaperO2(), PaperO3()));
  EXPECT_FALSE(LessEq(PaperO3(), PaperO2()));
}

TEST(OrderTest, PaperExampleJoin) {
  // o2 ⊔ o3 from the paper.
  Value expected = Value::RecordOf(
      {{"Name", Str("J Doe")},
       {"Address", Value::RecordOf(
                       {{"City", Str("Austin")}, {"Zip", Value::Int(78759)}})},
       {"Emp_no", Value::Int(1234)}});
  Result<Value> j = Join(PaperO2(), PaperO3());
  ASSERT_TRUE(j.ok()) << j.status();
  EXPECT_EQ(*j, expected);
}

TEST(OrderTest, PaperSimpleJoin) {
  // {Name = 'J Doe'} ⊔ {Emp_no = 1234} = {Name = 'J Doe', Emp_no = 1234}.
  Value a = Value::RecordOf({{"Name", Str("J Doe")}});
  Value b = Value::RecordOf({{"Emp_no", Value::Int(1234)}});
  Result<Value> j = Join(a, b);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(*j, Value::RecordOf(
                    {{"Name", Str("J Doe")}, {"Emp_no", Value::Int(1234)}}));
}

TEST(OrderTest, PaperJoinFailure) {
  // "we cannot join o1 with {Name = 'K Smith'}".
  Value smith = Value::RecordOf({{"Name", Str("K Smith")}});
  Result<Value> j = Join(PaperO1(), smith);
  ASSERT_FALSE(j.ok());
  EXPECT_EQ(j.status().code(), StatusCode::kInconsistent);
  EXPECT_FALSE(Consistent(PaperO1(), smith));
}

TEST(OrderTest, BottomIsLeast) {
  auto corpus = dbpl::testing::Corpus(7, 40, 2);
  for (const auto& v : corpus) {
    EXPECT_TRUE(LessEq(Value::Bottom(), v));
    Result<Value> j = Join(Value::Bottom(), v);
    ASSERT_TRUE(j.ok());
    EXPECT_EQ(*j, v);
    EXPECT_EQ(Meet(Value::Bottom(), v), Value::Bottom());
  }
}

TEST(OrderTest, AtomsAreFlat) {
  EXPECT_TRUE(LessEq(Value::Int(3), Value::Int(3)));
  EXPECT_FALSE(LessEq(Value::Int(3), Value::Int(4)));
  EXPECT_FALSE(LessEq(Value::Int(3), Value::Real(3.0)));
  EXPECT_FALSE(LessEq(Str("a"), Str("ab")));
  EXPECT_FALSE(LessEq(Value::Bool(false), Value::Bool(true)));
}

TEST(OrderTest, DifferentKindsIncomparable) {
  EXPECT_FALSE(LessEq(Value::Int(1), Str("1")));
  EXPECT_FALSE(LessEq(Value::RecordOf({}), Value::Set({})));
  EXPECT_FALSE(LessEq(Value::List({}), Value::Set({})));
  EXPECT_FALSE(Join(Value::Int(1), Str("1")).ok());
}

TEST(OrderTest, EmptyRecordIsLeastRecord) {
  EXPECT_TRUE(LessEq(Value::RecordOf({}), PaperO1()));
  EXPECT_FALSE(LessEq(PaperO1(), Value::RecordOf({})));
}

TEST(OrderTest, ListOrderingIsPointwiseSameLength) {
  Value a = Value::List({Value::RecordOf({}), Value::Int(1)});
  Value b = Value::List({PaperO1(), Value::Int(1)});
  EXPECT_TRUE(LessEq(a, b));
  EXPECT_FALSE(LessEq(b, a));
  Value c = Value::List({PaperO1()});
  EXPECT_FALSE(LessEq(a, c));
  EXPECT_FALSE(Join(a, c).ok());
}

TEST(OrderTest, SetOrderingIsSmythStyle) {
  // R ⊑ R' iff each member of R' refines some member of R.
  Value r = Value::Set({Value::RecordOf({})});
  Value rp = Value::Set({PaperO1(), PaperO2()});
  EXPECT_TRUE(LessEq(r, rp));
  EXPECT_FALSE(LessEq(rp, r));
  // The empty relation is the top element.
  Value empty = Value::Set({});
  EXPECT_TRUE(LessEq(r, empty));
  EXPECT_TRUE(LessEq(rp, empty));
  EXPECT_FALSE(LessEq(empty, r));
}

TEST(OrderTest, SetJoinIsGeneralizedJoin) {
  Value r1 = Value::Set({Value::RecordOf({{"Name", Str("J Doe")}})});
  Value r2 = Value::Set({Value::RecordOf({{"Emp_no", Value::Int(1)}})});
  Result<Value> j = Join(r1, r2);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(*j, Value::Set({Value::RecordOf(
                    {{"Name", Str("J Doe")}, {"Emp_no", Value::Int(1)}})}));
  // Wholly contradictory relations join to the empty (top) relation.
  Value r3 = Value::Set({Value::RecordOf({{"Name", Str("K Smith")}})});
  Result<Value> j2 = Join(r1, r3);
  ASSERT_TRUE(j2.ok());
  EXPECT_EQ(*j2, Value::Set({}));
}

// ---------------------------------------------------------------------
// Property tests over a pseudo-random corpus.
// ---------------------------------------------------------------------

class OrderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, OrderPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(OrderPropertyTest, PartialOrderLaws) {
  auto corpus = dbpl::testing::Corpus(GetParam(), 30, 2);
  for (const auto& a : corpus) {
    EXPECT_TRUE(LessEq(a, a)) << a;
    for (const auto& b : corpus) {
      if (LessEq(a, b) && LessEq(b, a)) {
        EXPECT_EQ(a, b) << a << " vs " << b;
      }
      for (const auto& c : corpus) {
        if (LessEq(a, b) && LessEq(b, c)) {
          EXPECT_TRUE(LessEq(a, c)) << a << " ⊑ " << b << " ⊑ " << c;
        }
      }
    }
  }
}

TEST_P(OrderPropertyTest, JoinIsLeastUpperBound) {
  auto corpus = dbpl::testing::Corpus(GetParam() * 31, 25, 2);
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      Result<Value> j = Join(a, b);
      if (!j.ok()) continue;
      EXPECT_TRUE(LessEq(a, *j)) << a << " !⊑ " << *j;
      EXPECT_TRUE(LessEq(b, *j)) << b << " !⊑ " << *j;
      // Least: any corpus upper bound dominates the join.
      for (const auto& u : corpus) {
        if (LessEq(a, u) && LessEq(b, u)) {
          EXPECT_TRUE(LessEq(*j, u))
              << "join " << *j << " not least vs " << u;
        }
      }
    }
  }
}

TEST_P(OrderPropertyTest, JoinAlgebraicLaws) {
  auto corpus = dbpl::testing::Corpus(GetParam() * 17, 20, 2);
  for (const auto& a : corpus) {
    // Idempotence.
    Result<Value> aa = Join(a, a);
    ASSERT_TRUE(aa.ok());
    EXPECT_EQ(*aa, a);
    for (const auto& b : corpus) {
      // Commutativity (including failure agreement).
      Result<Value> ab = Join(a, b);
      Result<Value> ba = Join(b, a);
      EXPECT_EQ(ab.ok(), ba.ok());
      if (ab.ok()) EXPECT_EQ(*ab, *ba);
      // a ⊑ b  ⟺  a ⊔ b = b.
      if (LessEq(a, b)) {
        ASSERT_TRUE(ab.ok()) << a << " " << b;
        EXPECT_EQ(*ab, b);
      }
    }
  }
}

TEST_P(OrderPropertyTest, MeetIsGreatestLowerBound) {
  auto corpus = dbpl::testing::Corpus(GetParam() * 71, 25, 2);
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      Value m = Meet(a, b);
      EXPECT_TRUE(LessEq(m, a)) << m << " !⊑ " << a;
      EXPECT_TRUE(LessEq(m, b)) << m << " !⊑ " << b;
      for (const auto& l : corpus) {
        if (LessEq(l, a) && LessEq(l, b)) {
          EXPECT_TRUE(LessEq(l, m))
              << "meet " << m << " not greatest vs " << l;
        }
      }
      // Commutativity and idempotence.
      EXPECT_EQ(m, Meet(b, a));
    }
  }
  for (const auto& a : corpus) EXPECT_EQ(Meet(a, a), a);
}

TEST_P(OrderPropertyTest, JoinAssociativity) {
  auto corpus = dbpl::testing::Corpus(GetParam() * 101, 12, 2);
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      for (const auto& c : corpus) {
        Result<Value> ab = Join(a, b);
        Result<Value> bc = Join(b, c);
        Result<Value> left =
            ab.ok() ? Join(*ab, c) : Result<Value>(ab.status());
        Result<Value> right =
            bc.ok() ? Join(a, *bc) : Result<Value>(bc.status());
        EXPECT_EQ(left.ok(), right.ok())
            << a << " | " << b << " | " << c;
        if (left.ok() && right.ok()) EXPECT_EQ(*left, *right);
      }
    }
  }
}

}  // namespace
}  // namespace dbpl::core
