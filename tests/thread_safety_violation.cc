// Deliberately violates the locking discipline. NEVER linked into any
// target: tools/run_thread_safety.sh compiles this file with Clang's
// -Wthread-safety promoted to errors and requires the compile to FAIL
// — proving the analysis actually has teeth, not just that the
// annotated tree happens to be quiet. If this file ever compiles
// cleanly under the analyze flags, the gate itself is broken and the
// script exits non-zero.

#include "common/mutex.h"

namespace dbpl {

class Account {
 public:
  // Violation 1: touches a guarded field with no lock held.
  void UnguardedDeposit(int amount) { balance_ += amount; }

  // Violation 2: claims the caller holds mu_, then takes it again.
  void DoubleAcquire() DBPL_REQUIRES(mu_) {
    MutexLock lock(&mu_);
    balance_ = 0;
  }

  // Violation 3: returns with the lock still held (unbalanced
  // acquire on a non-scoped path).
  void LeakLock() {
    mu_.Lock();
    balance_ = 0;
    // missing mu_.Unlock()
  }

 private:
  Mutex mu_{LockRank::kState, "account.mu_"};
  int balance_ DBPL_GUARDED_BY(mu_) = 0;
};

// Violation 4: a seqlock write side that can return mid-publish,
// leaving the sequence odd — a permanent reader livelock.
class Registry {
 public:
  void Publish(bool bail) {
    seq_.WriteBegin();
    if (bail) return;  // escapes with the capability held
    seq_.WriteEnd();
  }

 private:
  SeqLock seq_;
};

}  // namespace dbpl
