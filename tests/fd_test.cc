#include "core/fd.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/grelation.h"
#include "core/value.h"

namespace dbpl::core {
namespace {

using FD = FunctionalDependency;

Value Str(const char* s) { return Value::String(s); }

TEST(FdTest, ClosureBasic) {
  // A -> B, B -> C: {A}+ = {A, B, C}.
  std::vector<FD> fds = {{{"A"}, {"B"}}, {{"B"}, {"C"}}};
  EXPECT_EQ(Closure({"A"}, fds), (AttrSet{"A", "B", "C"}));
  EXPECT_EQ(Closure({"B"}, fds), (AttrSet{"B", "C"}));
  EXPECT_EQ(Closure({"C"}, fds), (AttrSet{"C"}));
}

TEST(FdTest, ClosureWithCompositeLhs) {
  // AB -> C, C -> D.
  std::vector<FD> fds = {{{"A", "B"}, {"C"}}, {{"C"}, {"D"}}};
  EXPECT_EQ(Closure({"A"}, fds), (AttrSet{"A"}));
  EXPECT_EQ(Closure({"A", "B"}, fds), (AttrSet{"A", "B", "C", "D"}));
}

TEST(FdTest, ImpliesDerivesTransitively) {
  std::vector<FD> fds = {{{"A"}, {"B"}}, {{"B"}, {"C"}}};
  EXPECT_TRUE(Implies(fds, {{"A"}, {"C"}}));
  EXPECT_TRUE(Implies(fds, {{"A"}, {"B", "C"}}));
  EXPECT_FALSE(Implies(fds, {{"C"}, {"A"}}));
  // Reflexivity: X -> X always holds.
  EXPECT_TRUE(Implies({}, {{"A"}, {"A"}}));
  // Augmentation-style consequence.
  EXPECT_TRUE(Implies(fds, {{"A", "Z"}, {"C"}}));
}

TEST(FdTest, IsSuperkey) {
  AttrSet all = {"A", "B", "C"};
  std::vector<FD> fds = {{{"A"}, {"B"}}, {{"B"}, {"C"}}};
  EXPECT_TRUE(IsSuperkey({"A"}, all, fds));
  EXPECT_TRUE(IsSuperkey({"A", "C"}, all, fds));
  EXPECT_FALSE(IsSuperkey({"B"}, all, fds));
}

TEST(FdTest, CandidateKeysSimpleChain) {
  AttrSet all = {"A", "B", "C"};
  std::vector<FD> fds = {{{"A"}, {"B"}}, {{"B"}, {"C"}}};
  std::vector<AttrSet> keys = CandidateKeys(all, fds);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (AttrSet{"A"}));
}

TEST(FdTest, CandidateKeysCycle) {
  // A -> B, B -> A, so both {A,C} and {B,C} are keys of {A,B,C}.
  AttrSet all = {"A", "B", "C"};
  std::vector<FD> fds = {{{"A"}, {"B"}}, {{"B"}, {"A"}}};
  std::vector<AttrSet> keys = CandidateKeys(all, fds);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_NE(std::find(keys.begin(), keys.end(), AttrSet{"A", "C"}),
            keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), AttrSet{"B", "C"}),
            keys.end());
}

TEST(FdTest, CandidateKeysNoFds) {
  AttrSet all = {"A", "B"};
  std::vector<AttrSet> keys = CandidateKeys(all, {});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], all);
}

TEST(FdTest, MinimalCoverSplitsRhsAndRemovesRedundancy) {
  // {A -> BC, B -> C, A -> B} minimizes to {A -> B, B -> C}.
  std::vector<FD> fds = {{{"A"}, {"B", "C"}}, {{"B"}, {"C"}}, {{"A"}, {"B"}}};
  std::vector<FD> cover = MinimalCover(fds);
  ASSERT_EQ(cover.size(), 2u);
  EXPECT_NE(std::find(cover.begin(), cover.end(), FD{{"A"}, {"B"}}),
            cover.end());
  EXPECT_NE(std::find(cover.begin(), cover.end(), FD{{"B"}, {"C"}}),
            cover.end());
}

TEST(FdTest, MinimalCoverRemovesExtraneousLhsAttrs) {
  // {AB -> C, A -> B}: B is extraneous in AB -> C.
  std::vector<FD> fds = {{{"A", "B"}, {"C"}}, {{"A"}, {"B"}}};
  std::vector<FD> cover = MinimalCover(fds);
  EXPECT_NE(std::find(cover.begin(), cover.end(), FD{{"A"}, {"C"}}),
            cover.end());
  for (const auto& fd : cover) {
    EXPECT_FALSE(fd.lhs == (AttrSet{"A", "B"}));
  }
}

TEST(FdTest, MinimalCoverIsEquivalent) {
  std::vector<FD> fds = {{{"A"}, {"B", "C"}},
                         {{"B", "C"}, {"D"}},
                         {{"A", "C"}, {"D"}}};
  std::vector<FD> cover = MinimalCover(fds);
  // Every original FD is implied by the cover and vice versa.
  for (const auto& fd : fds) EXPECT_TRUE(Implies(cover, fd)) << fd.ToString();
  for (const auto& fd : cover) EXPECT_TRUE(Implies(fds, fd)) << fd.ToString();
}

GRelation EmployeeRelation() {
  return GRelation::FromObjects({
      Value::RecordOf({{"Name", Str("J Doe")},
                       {"Dept", Str("Sales")},
                       {"City", Str("Moose")}}),
      Value::RecordOf({{"Name", Str("M Dee")},
                       {"Dept", Str("Sales")},
                       {"City", Str("Moose")}}),
      Value::RecordOf({{"Name", Str("N Bug")},
                       {"Dept", Str("Manuf")},
                       {"City", Str("Billings")}}),
  });
}

TEST(FdTest, SatisfiesClassicOnTotalRecords) {
  GRelation r = EmployeeRelation();
  EXPECT_TRUE(SatisfiesClassic(r, {{"Name"}, {"Dept"}}));
  EXPECT_TRUE(SatisfiesClassic(r, {{"Dept"}, {"City"}}));
  EXPECT_FALSE(SatisfiesClassic(r, {{"Dept"}, {"Name"}}));
  EXPECT_FALSE(SatisfiesClassic(r, {{"City"}, {"Name"}}));
}

TEST(FdTest, WeakAgreesWithClassicOnTotalRecords) {
  GRelation r = EmployeeRelation();
  for (const FD& fd : std::vector<FD>{{{"Name"}, {"Dept"}},
                                      {{"Dept"}, {"City"}},
                                      {{"Dept"}, {"Name"}},
                                      {{"City"}, {"Name"}}}) {
    EXPECT_EQ(SatisfiesClassic(r, fd), SatisfiesWeak(r, fd)) << fd.ToString();
  }
}

TEST(FdTest, WeakSemanticsSeesThroughPartiality) {
  // Two partial objects: one lacks Dept, one lacks City. Under classical
  // equality their Name projections differ, so Name -> Dept holds
  // trivially; take objects with the *same* name instead.
  GRelation r = GRelation::FromObjects({
      Value::RecordOf({{"Name", Str("J Doe")}, {"Dept", Str("Sales")}}),
      Value::RecordOf({{"Name", Str("J Doe")}, {"City", Str("Moose")}}),
  });
  // Classic: {Name} projections equal, {Dept} projections are {Dept=...}
  // vs {} — unequal, so the FD fails classically.
  EXPECT_FALSE(SatisfiesClassic(r, {{"Name"}, {"Dept"}}));
  // Weak: {Dept = Sales} and {} are *consistent* (joinable), so the
  // partial objects do not violate the dependency.
  EXPECT_TRUE(SatisfiesWeak(r, {{"Name"}, {"Dept"}}));
}

TEST(FdTest, WeakSemanticsStillDetectsRealViolations) {
  GRelation r = GRelation::FromObjects({
      Value::RecordOf({{"Name", Str("J Doe")}, {"Dept", Str("Sales")}}),
      Value::RecordOf({{"Name", Str("J Doe")}, {"Dept", Str("Manuf")}}),
  });
  EXPECT_FALSE(SatisfiesWeak(r, {{"Name"}, {"Dept"}}));
  EXPECT_FALSE(SatisfiesClassic(r, {{"Name"}, {"Dept"}}));
}

TEST(FdTest, IsBcnf) {
  AttrSet all = {"A", "B", "C"};
  // A is a key: BCNF.
  EXPECT_TRUE(IsBcnf(all, {{{"A"}, {"B"}}, {{"A"}, {"C"}}}));
  // B -> C with B not a key: violation.
  EXPECT_FALSE(IsBcnf(all, {{{"A"}, {"B"}}, {{"B"}, {"C"}}}));
  // Trivial dependencies never violate.
  EXPECT_TRUE(IsBcnf(all, {{{"B"}, {"B"}}}));
  EXPECT_TRUE(IsBcnf(all, {}));
}

TEST(FdTest, ProjectFdsFindsTransitiveDependencies) {
  // A -> B, B -> C projected onto {A, C} yields A -> C.
  std::vector<FD> fds = {{{"A"}, {"B"}}, {{"B"}, {"C"}}};
  std::vector<FD> projected = ProjectFds({"A", "C"}, fds);
  EXPECT_TRUE(Implies(projected, {{"A"}, {"C"}}));
  // Nothing about B survives.
  for (const auto& fd : projected) {
    EXPECT_FALSE(fd.lhs.contains("B"));
    EXPECT_FALSE(fd.rhs.contains("B"));
  }
}

TEST(FdTest, BcnfDecompositionClassicExample) {
  // The textbook schema: Lot(Prop, County, Lot#, Area, Price) with
  //   Prop -> everything; {County, Lot#} -> Prop; Area -> Price.
  // Area -> Price violates BCNF; the decomposition splits it out.
  AttrSet all = {"Prop", "County", "LotNo", "Area", "Price"};
  std::vector<FD> fds = {
      {{"Prop"}, {"County", "LotNo", "Area", "Price"}},
      {{"County", "LotNo"}, {"Prop"}},
      {{"Area"}, {"Price"}},
  };
  std::vector<AttrSet> fragments = DecomposeBcnf(all, fds);
  ASSERT_GE(fragments.size(), 2u);
  // Every fragment is in BCNF under its projected dependencies.
  for (const auto& frag : fragments) {
    EXPECT_TRUE(IsBcnf(frag, ProjectFds(frag, fds)))
        << "fragment not BCNF";
  }
  // Attribute preservation: the union of fragments is the schema.
  AttrSet covered;
  for (const auto& frag : fragments) covered.insert(frag.begin(), frag.end());
  EXPECT_EQ(covered, all);
  // The Area->Price fragment exists.
  bool has_area_price = false;
  for (const auto& frag : fragments) {
    if (frag == AttrSet{"Area", "Price"}) has_area_price = true;
  }
  EXPECT_TRUE(has_area_price);
}

TEST(FdTest, BcnfDecompositionOfBcnfSchemaIsIdentity) {
  AttrSet all = {"A", "B"};
  std::vector<FD> fds = {{{"A"}, {"B"}}};
  std::vector<AttrSet> fragments = DecomposeBcnf(all, fds);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0], all);
}

TEST(FdTest, FdToString) {
  FD fd = {{"A", "B"}, {"C"}};
  EXPECT_EQ(fd.ToString(), "A,B -> C");
}

}  // namespace
}  // namespace dbpl::core
