// Writer/reader stress tests for dyndb::Database's snapshot isolation.
// N writer threads insert tagged records while M reader threads acquire
// snapshots and check, within each snapshot: prefix consistency (no
// torn values, per-writer sequence numbers in order), agreement of all
// three Get strategies and their parallel variants, and the paper's
// containment law `T ≤ U ⇒ Get(T) ⊆ Get(U)`.
//
// Sizes are deliberately modest so the test is fast under
// ThreadSanitizer (it runs under `ctest -L tsan` in the DBPL_TSAN
// preset), while still racing every reader path against the writer
// path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/order.h"
#include "core/value.h"
#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "types/subtype.h"
#include "types/type.h"

namespace dbpl::dyndb {
namespace {

using core::Value;
using types::Type;

constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kPerWriter = 150;

/// The record writer `w` inserts as its `i`-th entry. Self-describing,
/// so a reader can validate any entry it sees in isolation.
Value WriterRecord(int w, int i) {
  return Value::RecordOf({{"seq", Value::Int(i)},
                          {"w", Value::Int(w)},
                          {"tag", Value::String("writer")}});
}

/// The type every writer record inhabits (by record width subtyping).
Type WriterRecordType() {
  return Type::RecordOf({{"seq", Type::Int()}, {"w", Type::Int()}});
}

int64_t FieldInt(const Value& rec, const std::string& name) {
  for (const auto& f : rec.fields()) {
    if (f.name == name) return f.value.AsInt();
  }
  ADD_FAILURE() << "missing field " << name << " in " << rec.ToString();
  return -1;
}

/// Validates one snapshot end to end. Returns the snapshot's size so
/// callers can check reader-side monotonicity.
size_t CheckSnapshot(const Database::Snapshot& snap) {
  const size_t n = snap.size();

  // Every visible id resolves, every entry is an untorn writer record,
  // and each writer's sequence numbers appear in insertion order.
  std::vector<int64_t> last_seq(kWriters, -1);
  std::vector<Dynamic> entries = snap.Entries();
  EXPECT_EQ(entries.size(), n);
  for (size_t id = 0; id < n; ++id) {
    Result<Dynamic> d = snap.Get(id);
    EXPECT_TRUE(d.ok()) << "id " << id << " below size " << n;
    if (!d.ok()) return n;
    EXPECT_EQ(d->value, entries[id].value);
    const int64_t w = FieldInt(d->value, "w");
    const int64_t seq = FieldInt(d->value, "seq");
    EXPECT_TRUE(w >= 0 && w < kWriters) << d->value.ToString();
    if (w < 0 || w >= kWriters) return n;
    EXPECT_GT(seq, last_seq[static_cast<size_t>(w)])
        << "writer " << w << " out of order at id " << id;
    last_seq[static_cast<size_t>(w)] = seq;
  }

  // Strategy agreement on this frozen image. All writer records match
  // the writer record type; parallel variants are order-identical.
  const Type t = WriterRecordType();
  std::vector<Value> scan = snap.GetScan(t);
  EXPECT_EQ(scan.size(), n);
  EXPECT_EQ(scan, snap.GetViaIndex(t));
  EXPECT_EQ(scan, snap.GetScan(t, GetOptions{.threads = 4}));
  EXPECT_EQ(scan, snap.GetViaIndex(t, GetOptions{.threads = 4}));

  // Containment within one snapshot: t ≤ u ⇒ Get(t) ⊆ Get(u). The wider
  // record type (fewer fields) is the supertype.
  const Type u = Type::RecordOf({{"seq", Type::Int()}});
  EXPECT_TRUE(types::IsSubtype(t, u));
  std::vector<Value> sup = snap.GetScan(u);
  auto less = [](const Value& a, const Value& b) {
    return core::Compare(a, b) < 0;
  };
  std::vector<Value> sub_sorted = scan;
  std::sort(sub_sorted.begin(), sub_sorted.end(), less);
  std::sort(sup.begin(), sup.end(), less);
  EXPECT_TRUE(std::includes(sup.begin(), sup.end(), sub_sorted.begin(),
                            sub_sorted.end(), less));
  return n;
}

TEST(DyndbConcurrency, WritersAndReadersStress) {
  Database db;
  // One extent registered up front so GetViaExtent races the writers
  // too; a second is registered mid-run from the main thread.
  ASSERT_TRUE(db.RegisterExtent("writers", WriterRecordType()).ok());

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        db.MustInsertValue(WriterRecord(w, i));
      }
    });
  }

  std::vector<Status> reader_status(kReaders, Status::OK());
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&db, r, &reader_status] {
      size_t last_size = 0;
      uint64_t last_epoch = 0;
      while (last_size < kWriters * kPerWriter) {
        Database::Snapshot snap = db.GetSnapshot();
        // Snapshots acquired later can only grow (readers see a
        // monotone prefix chain), and epochs only advance.
        size_t n = CheckSnapshot(snap);
        if (n < last_size || snap.epoch() < last_epoch) {
          reader_status[r] =
              Status::Internal("snapshot went backwards in reader " +
                               std::to_string(r));
          return;
        }
        last_size = n;
        last_epoch = snap.epoch();

        // The pre-registered extent agrees with the scan on the *same*
        // snapshot even while inserts land in newer states.
        Result<std::vector<Value>> extent =
            snap.GetViaExtent(WriterRecordType());
        if (!extent.ok()) {
          reader_status[r] = extent.status();
          return;
        }
        if (extent->size() != n) {
          reader_status[r] = Status::Internal("extent size mismatch");
          return;
        }
      }
    });
  }

  // Race a registration against in-flight writers: the new extent must
  // be complete-as-of-its-epoch in every later snapshot.
  ASSERT_TRUE(
      db.RegisterExtent("seqs", Type::RecordOf({{"seq", Type::Int()}})).ok());

  for (auto& t : threads) t.join();
  for (const Status& s : reader_status) EXPECT_TRUE(s.ok()) << s.message();

  // Final state: everything visible, every strategy agrees, both
  // extents complete.
  Database::Snapshot final_snap = db.GetSnapshot();
  EXPECT_EQ(CheckSnapshot(final_snap), size_t{kWriters * kPerWriter});
  Result<std::vector<Value>> seqs =
      final_snap.GetViaExtent(Type::RecordOf({{"seq", Type::Int()}}));
  ASSERT_TRUE(seqs.ok());
  EXPECT_EQ(seqs->size(), size_t{kWriters * kPerWriter});
}

TEST(DyndbConcurrency, SnapshotPinsItsEpochAcrossLaterWrites) {
  Database db;
  for (int i = 0; i < 8; ++i) db.MustInsertValue(WriterRecord(0, i));
  Database::Snapshot pinned = db.GetSnapshot();
  const uint64_t epoch = pinned.epoch();
  const std::vector<Dynamic> before = pinned.Entries();

  std::thread writer([&db] {
    for (int i = 8; i < kPerWriter; ++i) db.MustInsertValue(WriterRecord(1, i));
  });
  // The pinned snapshot never changes while the writer runs.
  for (int probe = 0; probe < 50; ++probe) {
    EXPECT_EQ(pinned.size(), 8u);
    EXPECT_EQ(pinned.epoch(), epoch);
    EXPECT_EQ(pinned.Entries(), before);
  }
  writer.join();
  EXPECT_EQ(pinned.size(), 8u);
  EXPECT_GT(db.GetSnapshot().epoch(), epoch);
}

TEST(DyndbConcurrency, ConcurrentRegistrationsAndJoins) {
  Database db;
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 40; ++i) db.MustInsertValue(WriterRecord(w, i));
  }
  std::thread writer([&db] {
    for (int i = 0; i < 200; ++i) db.MustInsertValue(WriterRecord(3, i));
  });
  std::thread registrar([&db] {
    for (int i = 0; i < 20; ++i) {
      Status s = db.RegisterExtent("ext" + std::to_string(i),
                                   WriterRecordType());
      ASSERT_TRUE(s.ok()) << s.message();
    }
  });
  // Joins over one snapshot while both mutators run: `Get(t) ⋈ Get(t)`
  // over a cochain of untorn records never errors.
  for (int i = 0; i < 10; ++i) {
    Database::Snapshot snap = db.GetSnapshot();
    Result<core::GRelation> joined =
        snap.JoinExtents(WriterRecordType(), WriterRecordType(),
                         core::JoinOptions{.threads = 2});
    ASSERT_TRUE(joined.ok()) << joined.status().message();
  }
  writer.join();
  registrar.join();
  EXPECT_EQ(db.GetSnapshot().ExtentNames().size(), 20u);
}

}  // namespace
}  // namespace dbpl::dyndb
