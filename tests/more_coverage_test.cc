// A second coverage wave: cross-cutting properties and edge cases that
// the per-module suites do not reach.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/heap.h"
#include "core/order.h"
#include "dyndb/database.h"
#include "lang/interp.h"
#include "persist/intrinsic_store.h"
#include "storage/kv_store.h"
#include "test_util.h"
#include "types/parse.h"
#include "types/subtype.h"
#include "types/type_of.h"

namespace dbpl {
namespace {

using core::Heap;
using core::Oid;
using core::Value;
using types::ParseType;
using types::Type;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/dbpl_more_" + name + "_" +
         std::to_string(::getpid());
}

// ---------------------------------------------------------------------
// Order-theoretic properties of record operations.
// ---------------------------------------------------------------------

class OrderOpsPropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, OrderOpsPropertyTest,
                         ::testing::Values(101, 202, 303));

TEST_P(OrderOpsPropertyTest, ProjectionIsMonotone) {
  // a ⊑ b  ⟹  a|A ⊑ b|A for records.
  dbpl::testing::Rng rng(GetParam());
  const std::vector<std::string> attrs = {"Name", "Dept"};
  for (int i = 0; i < 40; ++i) {
    Value a = dbpl::testing::RandomRecord(rng);
    // Refine a by adding or deepening fields.
    Value b = a.WithField("Extra", Value::Int(1));
    ASSERT_TRUE(core::LessEq(a, b));
    EXPECT_TRUE(core::LessEq(a.Project(attrs), b.Project(attrs)));
  }
}

TEST_P(OrderOpsPropertyTest, WithFieldRefinesWhenFieldIsNew) {
  dbpl::testing::Rng rng(GetParam() * 3);
  for (int i = 0; i < 40; ++i) {
    Value a = dbpl::testing::RandomRecord(rng);
    if (a.FindField("Zzz") != nullptr) continue;
    Value b = a.WithField("Zzz", Value::Int(9));
    EXPECT_TRUE(core::Less(a, b));
    EXPECT_TRUE(core::Consistent(a, b));
    EXPECT_EQ(*core::Join(a, b), b);
    EXPECT_EQ(core::Meet(a, b), a);
  }
}

TEST_P(OrderOpsPropertyTest, HeapExtendOnlyAddsInformation) {
  dbpl::testing::Rng rng(GetParam() * 7);
  Heap heap;
  for (int i = 0; i < 30; ++i) {
    Value before = dbpl::testing::RandomRecord(rng);
    Oid oid = heap.Allocate(before);
    Value extra = dbpl::testing::RandomRecord(rng);
    auto extended = heap.Extend(oid, extra);
    if (extended.ok()) {
      EXPECT_TRUE(core::LessEq(before, *extended));
      EXPECT_TRUE(core::LessEq(extra, *extended));
    } else {
      // Failed extension leaves the object untouched.
      EXPECT_EQ(*heap.Get(oid), before);
    }
  }
}

// ---------------------------------------------------------------------
// Get/coerce coherence over random data.
// ---------------------------------------------------------------------

TEST_P(OrderOpsPropertyTest, EveryGetPackageCoercesToItsBound) {
  dbpl::testing::Rng rng(GetParam() * 13);
  dyndb::Database db;
  for (int i = 0; i < 60; ++i) {
    db.MustInsertValue(dbpl::testing::RandomRecord(rng));
  }
  Type bound = *ParseType("{Name: String}");
  for (const auto& pkg : db.GetPackages(bound)) {
    EXPECT_TRUE(dyndb::Coerce(pkg, bound).ok());
    EXPECT_TRUE(types::IsSubtype(pkg.type, bound));
  }
  // Scan and packages agree on cardinality.
  EXPECT_EQ(db.GetPackages(bound).size(), db.GetScan(bound).size());
}

TEST(DatabaseEdgeTest, DeclaredTypesGovernGet) {
  // Insert the same value twice: once at its principal type, once
  // declared at a supertype. Get distinguishes them.
  dyndb::Database db;
  Value emp = Value::RecordOf(
      {{"Name", Value::String("e")}, {"Empno", Value::Int(1)}});
  db.MustInsertValue(emp);
  auto declared = dyndb::MakeDynamicAs(emp, *ParseType("{Name: String}"));
  ASSERT_TRUE(declared.ok());
  db.MustInsert(*declared);
  EXPECT_EQ(db.GetScan(*ParseType("{Name: String}")).size(), 2u);
  EXPECT_EQ(db.GetScan(*ParseType("{Name: String, Empno: Int}")).size(), 1u);
}

// ---------------------------------------------------------------------
// Storage endurance.
// ---------------------------------------------------------------------

TEST(StorageEnduranceTest, RepeatedReopenIsIdempotent) {
  std::string path = TempPath("reopen");
  std::remove(path.c_str());
  {
    auto store = storage::KvStore::Open(path);
    ASSERT_TRUE(store.ok());
    storage::WriteBatch batch;
    for (int i = 0; i < 100; ++i) {
      batch.Put("k" + std::to_string(i), std::string(100, 'v'));
    }
    ASSERT_TRUE((*store)->Apply(batch).ok());
  }
  for (int round = 0; round < 5; ++round) {
    auto store = storage::KvStore::Open(path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->size(), 100u);
    EXPECT_FALSE((*store)->recovery_info().corrupt_tail);
    EXPECT_EQ((*store)->recovery_info().uncommitted_dropped, 0u);
  }
  std::remove(path.c_str());
}

TEST(StorageEnduranceTest, LargeValuesRoundTrip) {
  std::string path = TempPath("large");
  std::remove(path.c_str());
  std::string big(1 << 20, 'x');  // 1 MiB value
  big[12345] = 'y';
  {
    auto store = storage::KvStore::Open(path);
    ASSERT_TRUE(store.ok());
    storage::WriteBatch batch;
    batch.Put("big", big);
    ASSERT_TRUE((*store)->Apply(batch).ok());
  }
  auto store = storage::KvStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->Get("big"), big);
  std::remove(path.c_str());
}

TEST(IntrinsicEnduranceTest, ManyCommitCyclesAndCompaction) {
  std::string path = TempPath("cycles");
  std::remove(path.c_str());
  Oid obj;
  {
    auto store = persist::IntrinsicStore::Open(path);
    ASSERT_TRUE(store.ok());
    obj = (*store)->heap().Allocate(Value::Int(0));
    ASSERT_TRUE((*store)->SetRoot("counter", obj).ok());
    for (int i = 1; i <= 50; ++i) {
      ASSERT_TRUE((*store)->heap().Put(obj, Value::Int(i)).ok());
      ASSERT_TRUE((*store)->Commit().ok());
      if (i % 10 == 0) {
        ASSERT_TRUE((*store)->CompactStorage().ok());
      }
    }
  }
  auto store = persist::IntrinsicStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->heap().Get(obj), Value::Int(50));
  std::remove(path.c_str());
}

TEST(IntrinsicEnduranceTest, RootTypeSurvivesGcAndReopen) {
  std::string path = TempPath("roottype");
  std::remove(path.c_str());
  Type t = *ParseType("{Employees: Set[{Name: String}]}");
  {
    auto store = persist::IntrinsicStore::Open(path);
    ASSERT_TRUE(store.ok());
    Oid db = (*store)->heap().Allocate(Value::RecordOf(
        {{"Employees", Value::Set({})}}));
    (*store)->heap().Allocate(Value::Int(1));  // garbage
    ASSERT_TRUE((*store)->SetRootTyped("DB", db, t).ok());
    EXPECT_EQ((*store)->CollectGarbage(), 1u);
    ASSERT_TRUE((*store)->Commit().ok());
  }
  auto store = persist::IntrinsicStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->RootType("DB"), t);
  EXPECT_EQ((*store)->heap().size(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// MiniAmber corners.
// ---------------------------------------------------------------------

Result<std::vector<std::string>> RunSrc(const std::string& src) {
  lang::Interp interp;
  auto out = interp.Run(src);
  if (!out.ok()) return out.status();
  return out->values;
}

TEST(LangCornersTest, UserBindingShadowsBuiltin) {
  // A user-defined `map` takes precedence over the builtin.
  auto out = RunSrc(R"(
    let map = fun (x: Int) : Int => x * 100;
    map(3);
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, (std::vector<std::string>{"300"}));
}

TEST(LangCornersTest, NestedCaseAndPrecedence) {
  auto out = RunSrc(R"(
    let v : <a: <x: Int | y: Int> | b: Int> = <a = <y = 5>>;
    case v of
      a(inner) => case inner of x(n) => n | y(n) => n * 2 end
    | b(n) => n
    end;
    1 + 2 == 3 and 2 * 3 == 6;
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, (std::vector<std::string>{"10", "true"}));
}

TEST(LangCornersTest, SetJoinSubsumesInLanguage) {
  // Two partial facts about the same entity, joined at set level: the
  // cross-pairs that conflict disappear; the compatible pair merges.
  auto out = RunSrc(R"(
    let r1 = {| {Name = "J", Dept = "Sales"}, {Name = "K"} |};
    let r2 = {| {Name = "J", Empno = 1} |};
    r1 join r2;
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, (std::vector<std::string>{
                      "{|{Dept = \"Sales\", Empno = 1, Name = \"J\"}|}"}));
}

TEST(LangCornersTest, DeepRecursionWithinReason) {
  auto out = RunSrc(R"(
    let rec count(n: Int) : Int = if n == 0 then 0 else 1 + count(n - 1);
    count(500);
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, (std::vector<std::string>{"500"}));
}

TEST(LangCornersTest, StringEscapesRoundTrip) {
  auto out = RunSrc(R"(
    "line1\nline2" == "line1\nline2";
  )");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (std::vector<std::string>{"true"}));
}

TEST(LangCornersTest, MeetBuiltinTypesAsLub) {
  // meet's static type is the LUB of the operand types (less
  // information ⇒ higher type) — check it typechecks downstream.
  auto out = RunSrc(R"(
    let m = meet({Name = "J", Empno = 1}, {Name = "J", Dept = "S"});
    m.Name;
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, (std::vector<std::string>{"\"J\""}));
  // Fields outside the common structure are not accessible.
  auto bad = RunSrc(R"(
    let m = meet({Name = "J", Empno = 1}, {Name = "J", Dept = "S"});
    m.Empno;
  )");
  EXPECT_FALSE(bad.ok());
}

TEST(LangCornersTest, TypeAliasUsableInsideLaterAliases) {
  auto out = RunSrc(R"(
    type Addr = {City: String};
    type Person = {Name: String, Addr: Addr};
    let p : Person = {Name = "J", Addr = {City = "Austin"}};
    p.Addr.City;
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, (std::vector<std::string>{"\"Austin\""}));
}

// ---------------------------------------------------------------------
// TypeOf / serialization agreement on random data (the full loop).
// ---------------------------------------------------------------------

TEST_P(OrderOpsPropertyTest, TypeOfIsStableUnderSerialization) {
  auto corpus = dbpl::testing::Corpus(GetParam() * 31, 50, 3);
  for (const auto& v : corpus) {
    Type before = types::TypeOf(v);
    dyndb::Dynamic d = dyndb::MakeDynamic(v);
    EXPECT_EQ(d.type, before);
    // The principal type always accepts its own value's refinements'
    // supertypes: v itself coerces to anything above its type.
    EXPECT_TRUE(dyndb::Coerce(d, Type::Top()).ok());
    EXPECT_TRUE(dyndb::Coerce(d, before).ok());
  }
}

}  // namespace
}  // namespace dbpl
