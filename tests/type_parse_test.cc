#include "types/parse.h"

#include <gtest/gtest.h>

#include "types/subtype.h"
#include "types/type.h"

namespace dbpl::types {
namespace {

void ExpectRoundTrip(const Type& t) {
  Result<Type> parsed = ParseType(t.ToString());
  ASSERT_TRUE(parsed.ok()) << t.ToString() << " -> " << parsed.status();
  EXPECT_EQ(*parsed, t) << "printed: " << t.ToString()
                        << " reparsed: " << parsed->ToString();
}

TEST(TypeParseTest, BaseTypes) {
  EXPECT_EQ(*ParseType("Int"), Type::Int());
  EXPECT_EQ(*ParseType("  Bool "), Type::Bool());
  EXPECT_EQ(*ParseType("Top"), Type::Top());
  EXPECT_EQ(*ParseType("Bottom"), Type::Bottom());
  EXPECT_EQ(*ParseType("Dynamic"), Type::Dynamic());
  EXPECT_EQ(*ParseType("Real"), Type::Real());
  EXPECT_EQ(*ParseType("String"), Type::String());
}

TEST(TypeParseTest, Records) {
  EXPECT_EQ(*ParseType("{}"), Type::RecordOf({}));
  EXPECT_EQ(*ParseType("{Name: String, Age: Int}"),
            Type::RecordOf({{"Name", Type::String()}, {"Age", Type::Int()}}));
  EXPECT_EQ(*ParseType("{Addr: {City: String}}"),
            Type::RecordOf(
                {{"Addr", Type::RecordOf({{"City", Type::String()}})}}));
}

TEST(TypeParseTest, Collections) {
  EXPECT_EQ(*ParseType("List[Int]"), Type::List(Type::Int()));
  EXPECT_EQ(*ParseType("Set[{Name: String}]"),
            Type::Set(Type::RecordOf({{"Name", Type::String()}})));
  EXPECT_EQ(*ParseType("Ref[Int]"), Type::RefTo(Type::Int()));
}

TEST(TypeParseTest, Functions) {
  EXPECT_EQ(*ParseType("(Int) -> Bool"),
            Type::Func({Type::Int()}, Type::Bool()));
  EXPECT_EQ(*ParseType("(Int, String) -> Bool"),
            Type::Func({Type::Int(), Type::String()}, Type::Bool()));
  EXPECT_EQ(*ParseType("() -> Int"), Type::Func({}, Type::Int()));
  // Sugar: unparenthesized single parameter, right-associative.
  EXPECT_EQ(*ParseType("Int -> Bool -> String"),
            Type::Func({Type::Int()},
                       Type::Func({Type::Bool()}, Type::String())));
  // Grouping parens.
  EXPECT_EQ(*ParseType("(Int)"), Type::Int());
}

TEST(TypeParseTest, Variants) {
  EXPECT_EQ(*ParseType("<ok: Int | err: String>"),
            Type::VariantOf({{"ok", Type::Int()}, {"err", Type::String()}}));
}

TEST(TypeParseTest, Quantifiers) {
  EXPECT_EQ(*ParseType("Forall t. t"), Type::Forall("t", Type::Var("t")));
  EXPECT_EQ(*ParseType("Exists t <= {Name: String}. t"),
            Type::Exists("t", Type::RecordOf({{"Name", Type::String()}}),
                         Type::Var("t")));
  EXPECT_EQ(*ParseType("Mu l. {next: l}"),
            Type::Mu("l", Type::RecordOf({{"next", Type::Var("l")}})));
}

TEST(TypeParseTest, GetTypeFromThePaper) {
  Result<Type> t = ParseType(
      "Forall t. (List[Dynamic]) -> List[Exists u <= t. u]");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->kind(), TypeKind::kForall);
  EXPECT_EQ(t->body().result().element().kind(), TypeKind::kExists);
}

TEST(TypeParseTest, RoundTripsComplexTypes) {
  ExpectRoundTrip(Type::RecordOf(
      {{"Employees",
        Type::Set(Type::RecordOf(
            {{"Name", Type::String()},
             {"Addr", Type::RecordOf({{"City", Type::String()}})}}))},
       {"Count", Type::Int()}}));
  ExpectRoundTrip(Type::Forall(
      "t", Type::RecordOf({{"Name", Type::String()}}),
      Type::Func({Type::List(Type::Dynamic())},
                 Type::List(Type::Exists("u", Type::Var("t"),
                                         Type::Var("u"))))));
  ExpectRoundTrip(Type::Mu(
      "l", Type::VariantOf(
               {{"nil", Type::RecordOf({})},
                {"cons", Type::RecordOf(
                             {{"head", Type::Int()}, {"tail", Type::Var("l")}})}})));
  ExpectRoundTrip(Type::Func({}, Type::Func({Type::Int()}, Type::Int())));
  ExpectRoundTrip(Type::VariantOf({{"a", Type::List(Type::Set(Type::Top()))}}));
}

TEST(TypeParseTest, Errors) {
  EXPECT_FALSE(ParseType("").ok());
  EXPECT_FALSE(ParseType("{Name String}").ok());
  EXPECT_FALSE(ParseType("List[Int").ok());
  EXPECT_FALSE(ParseType("Int extra").ok());
  EXPECT_FALSE(ParseType("Forall . t").ok());
  EXPECT_FALSE(ParseType("(Int, Bool)").ok());  // list without ->
  EXPECT_FALSE(ParseType("{x: Int, x: Bool}").ok());  // duplicate label
}

TEST(TypeParseTest, ParsedTypesInteroperateWithSubtyping) {
  Type emp = *ParseType("{Name: String, Empno: Int}");
  Type person = *ParseType("{Name: String}");
  EXPECT_TRUE(IsSubtype(emp, person));
}

}  // namespace
}  // namespace dbpl::types
