// Unit tests for the write-ahead durability layer: the WalRecord codec
// and persist::WalDatabase (open/commit/reopen, group commit,
// checkpointing, sticky failure handling, concurrent writers). The
// systematic crash-point matrix lives in crash_recovery_test.cc.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/value.h"
#include "dyndb/dynamic.h"
#include "persist/wal.h"
#include "persist/wal_database.h"
#include "storage/fault_vfs.h"
#include "types/parse.h"
#include "types/subtype.h"

namespace dbpl::persist {
namespace {

using core::Value;
using dyndb::Database;
using dyndb::Dynamic;
using dyndb::MakeDynamic;
using storage::FaultVfs;
using storage::LogRecord;
using storage::LogRecordType;
using types::ParseType;

Value Rec(int seq) {
  return Value::RecordOf({{"Seq", Value::Int(seq)},
                          {"Payload", Value::String(std::string(seq % 7, 'p'))}});
}

types::Type RecT() { return *ParseType("{Seq: Int, Payload: String}"); }

// ---------------------------------------------------------------------
// WalRecord codec
// ---------------------------------------------------------------------

TEST(WalRecordTest, InsertRoundTrip) {
  WalRecord rec;
  rec.op = WalOp::kInsert;
  rec.id = 42;
  rec.entry = MakeDynamic(Rec(3));

  LogRecord framed = EncodeWalRecord(rec);
  EXPECT_EQ(framed.type, LogRecordType::kPut);

  auto back = DecodeWalRecord(framed);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->op, WalOp::kInsert);
  EXPECT_EQ(back->id, 42u);
  EXPECT_EQ(back->entry.value, rec.entry.value);
  EXPECT_TRUE(types::TypeEquiv(back->entry.type, rec.entry.type));
}

TEST(WalRecordTest, RegisterExtentRoundTrip) {
  WalRecord rec;
  rec.op = WalOp::kRegisterExtent;
  rec.extent_name = "recs";
  rec.extent_type = RecT();

  auto back = DecodeWalRecord(EncodeWalRecord(rec));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->op, WalOp::kRegisterExtent);
  EXPECT_EQ(back->extent_name, "recs");
  EXPECT_TRUE(types::TypeEquiv(back->extent_type, rec.extent_type));
}

TEST(WalRecordTest, DecodeRejectsForeignFrames) {
  // Frame types the WAL never produces as redo records.
  EXPECT_EQ(DecodeWalRecord({LogRecordType::kCommit, "", ""}).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodeWalRecord({LogRecordType::kDelete, "k", ""}).status().code(),
            StatusCode::kCorruption);

  // A valid frame with garbage in the body.
  EXPECT_EQ(
      DecodeWalRecord({LogRecordType::kPut, "", "\x7fnot a record"})
          .status()
          .code(),
      StatusCode::kCorruption);

  // Truncated body: op byte only.
  EXPECT_FALSE(DecodeWalRecord({LogRecordType::kPut, "", "\x01"}).ok());

  // Trailing bytes after a well-formed record.
  WalRecord rec;
  rec.op = WalOp::kInsert;
  rec.entry = MakeDynamic(Value::Int(1));
  LogRecord framed = EncodeWalRecord(rec);
  framed.value.push_back('x');
  EXPECT_EQ(DecodeWalRecord(framed).status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------
// WalDatabase: basic durability
// ---------------------------------------------------------------------

TEST(WalDatabaseTest, InsertsAndExtentsSurviveReopen) {
  FaultVfs vfs(1);
  {
    auto wdb = WalDatabase::Open(&vfs, "db");
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    ASSERT_TRUE((*wdb)->RegisterExtent("recs", RecT()).ok());
    for (int i = 0; i < 5; ++i) {
      auto id = (*wdb)->InsertValue(Rec(i));
      ASSERT_TRUE(id.ok()) << id.status();
      EXPECT_EQ(*id, static_cast<Database::EntryId>(i));
    }
    // Default policy commits and syncs every mutation, so even a hard
    // power loss (all unsynced writes gone) must keep everything.
  }
  vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);

  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  const WalRecoveryStats& stats = (*wdb)->recovery_stats();
  EXPECT_FALSE(stats.had_checkpoint);
  EXPECT_EQ(stats.replayed_inserts, 5u);
  EXPECT_EQ(stats.replayed_extents, 1u);
  EXPECT_EQ(stats.uncommitted_dropped, 0u);
  EXPECT_FALSE(stats.corrupt_tail);

  const Database& db = (*wdb)->db();
  ASSERT_EQ(db.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(db.Get(i)->value, Rec(i));
  }
  // The replayed extent is maintained again: membership was rebuilt
  // from the replayed inserts.
  auto via_extent = db.GetViaExtent(RecT());
  ASSERT_TRUE(via_extent.ok()) << via_extent.status();
  EXPECT_EQ(*via_extent, db.GetScan(RecT()));
}

TEST(WalDatabaseTest, DirectDatabaseWritesAreLoggedToo) {
  FaultVfs vfs(2);
  {
    auto wdb = WalDatabase::Open(&vfs, "db");
    ASSERT_TRUE(wdb.ok());
    // Mutations through the raw database — bypassing the convenience
    // wrappers — must still reach the log via the write observer.
    (*wdb)->db().MustInsertValue(Value::Int(7));
    ASSERT_TRUE((*wdb)->db().RegisterExtent("ints", *ParseType("Int")).ok());
    (*wdb)->db().MustInsertValue(Value::Int(8));
    ASSERT_TRUE((*wdb)->wal_status().ok());
  }
  vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);

  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  EXPECT_EQ((*wdb)->db().size(), 2u);
  auto ints = (*wdb)->db().GetViaExtent(*ParseType("Int"));
  ASSERT_TRUE(ints.ok());
  EXPECT_EQ(ints->size(), 2u);
}

// ---------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------

TEST(WalDatabaseTest, GroupCommitDropsTheUnmarkedTailAtRecovery) {
  FaultVfs vfs(3);
  {
    auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{4, true});
    ASSERT_TRUE(wdb.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    }
    // 4 inserts went durable under one commit marker; 2 are still in
    // the open batch.
    EXPECT_EQ((*wdb)->pending_in_batch(), 2u);
    // Simulate a crash *before* the destructor can flush the tail: the
    // appended-but-unmarked records survive on "disk" (kSurvives) but
    // recovery must still drop them — no commit marker covers them.
    vfs.PowerLoss(FaultVfs::UnsyncedFate::kSurvives);
  }

  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{4, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  EXPECT_EQ((*wdb)->db().size(), 4u);
  EXPECT_EQ((*wdb)->recovery_stats().uncommitted_dropped, 2u);
  EXPECT_FALSE((*wdb)->recovery_stats().corrupt_tail);
}

TEST(WalDatabaseTest, ExplicitCommitClosesTheBatch) {
  FaultVfs vfs(4);
  {
    auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{100, true});
    ASSERT_TRUE(wdb.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    }
    EXPECT_EQ((*wdb)->pending_in_batch(), 6u);
    ASSERT_TRUE((*wdb)->Commit().ok());
    EXPECT_EQ((*wdb)->pending_in_batch(), 0u);
    vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);
  }

  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{100, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  EXPECT_EQ((*wdb)->db().size(), 6u);
}

TEST(WalDatabaseTest, UnsyncedPolicyCommitsAreStillAtomicGroups) {
  FaultVfs vfs(5);
  {
    // sync=false: commit markers are appended but not fsynced. Explicit
    // Commit() always syncs, so everything before it must survive kLost.
    auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, false});
    ASSERT_TRUE(wdb.ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    ASSERT_TRUE((*wdb)->Commit().ok());
    for (int i = 3; i < 5; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);
  }

  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, false});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  // The last two inserts (markers unsynced) are gone; the explicitly
  // committed prefix is intact. Never a torn or reordered state.
  EXPECT_EQ((*wdb)->db().size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ((*wdb)->db().Get(i)->value, Rec(i));
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

TEST(WalDatabaseTest, CheckpointRotatesTheLogAndSurvivesReopen) {
  FaultVfs vfs(6);
  {
    auto wdb = WalDatabase::Open(&vfs, "db");
    ASSERT_TRUE(wdb.ok());
    ASSERT_TRUE((*wdb)->RegisterExtent("recs", RecT()).ok());
    for (int i = 0; i < 8; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    const uint64_t log_before = (*wdb)->wal_bytes();
    EXPECT_GT(log_before, 0u);

    ASSERT_TRUE((*wdb)->Checkpoint().ok());
    EXPECT_EQ((*wdb)->wal_bytes(), 0u);
    EXPECT_EQ((*wdb)->checkpoints_taken(), 1u);

    // Writes after the checkpoint land in the fresh log generation.
    for (int i = 8; i < 11; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    EXPECT_LT((*wdb)->wal_bytes(), log_before);
  }
  vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);

  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  const WalRecoveryStats& stats = (*wdb)->recovery_stats();
  EXPECT_TRUE(stats.had_checkpoint);
  EXPECT_EQ(stats.checkpoint_entries, 8u);
  EXPECT_EQ(stats.replayed_inserts, 3u);
  EXPECT_EQ(stats.replayed_extents, 0u);  // extent came from the checkpoint

  const Database& db = (*wdb)->db();
  ASSERT_EQ(db.size(), 11u);
  for (int i = 0; i < 11; ++i) EXPECT_EQ(db.Get(i)->value, Rec(i));
  auto via_extent = db.GetViaExtent(RecT());
  ASSERT_TRUE(via_extent.ok()) << via_extent.status();
  EXPECT_EQ(via_extent->size(), 11u);
}

TEST(WalDatabaseTest, CheckpointHealsAPoisonedWal) {
  FaultVfs vfs(7);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok());
  ASSERT_TRUE((*wdb)->InsertValue(Rec(0)).ok());

  // Fail the next log append. The observer vetoes the mutation: the
  // in-memory insert is *rolled back* — memory never runs ahead of the
  // log — and the WAL is poisoned, so every later write is vetoed too.
  vfs.CrashAtMutatingOp(1);
  EXPECT_FALSE((*wdb)->InsertValue(Rec(1)).ok());
  vfs.ClearCrash();
  EXPECT_EQ((*wdb)->db().size(), 1u);
  EXPECT_FALSE((*wdb)->wal_status().ok());
  EXPECT_FALSE((*wdb)->InsertValue(Rec(1)).ok());
  EXPECT_EQ((*wdb)->db().size(), 1u);
  // A direct database write is vetoed the same way (same observer).
  EXPECT_FALSE((*wdb)->db().InsertValue(Rec(1)).ok());
  EXPECT_EQ((*wdb)->db().size(), 1u);

  // Checkpoint persists the entire in-memory state and rotates to a
  // clean log, healing the poison; writes flow again.
  ASSERT_TRUE((*wdb)->Checkpoint().ok());
  EXPECT_TRUE((*wdb)->wal_status().ok());
  ASSERT_TRUE((*wdb)->InsertValue(Rec(1)).ok());
  ASSERT_TRUE((*wdb)->InsertValue(Rec(2)).ok());

  wdb->reset();
  vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);
  auto reopened = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_EQ((*reopened)->db().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*reopened)->db().Get(i)->value, Rec(i));
  }
}

TEST(WalDatabaseTest, RepeatedCheckpointsKeepTheLogBounded) {
  FaultVfs vfs(8);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok());
  uint64_t max_log = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*wdb)->InsertValue(Rec(round * 4 + i)).ok());
    }
    max_log = std::max(max_log, (*wdb)->wal_bytes());
    ASSERT_TRUE((*wdb)->Checkpoint().ok());
    EXPECT_EQ((*wdb)->wal_bytes(), 0u);
  }
  EXPECT_EQ((*wdb)->checkpoints_taken(), 5u);
  // The log never grows past one round's worth of records even though
  // the database holds five rounds — durability cost is incremental.
  EXPECT_EQ((*wdb)->db().size(), 20u);
  EXPECT_GT(max_log, 0u);
}

// ---------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------

TEST(WalDatabaseTest, ConcurrentWritersAllReachTheLog) {
  // FaultVfs itself is not thread-safe, but WalDatabase serializes all
  // its log I/O under one mutex and nothing else touches the VFS while
  // the writers run — this is exactly the supported pattern.
  FaultVfs vfs(9);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  {
    auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{8, true});
    ASSERT_TRUE(wdb.ok());
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wdb, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto id = (*wdb)->InsertValue(Rec(t * kPerThread + i));
          ASSERT_TRUE(id.ok()) << id.status();
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_TRUE((*wdb)->Commit().ok());
    vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);
  }

  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{8, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  std::vector<Dynamic> entries = (*wdb)->db().entries();
  ASSERT_EQ(entries.size(), static_cast<size_t>(kThreads * kPerThread));
  // Interleaving across threads is arbitrary, but recovery must yield
  // every inserted value exactly once, untorn.
  std::vector<int> seen(kThreads * kPerThread, 0);
  for (const Dynamic& d : entries) {
    const Value* seq = d.value.FindField("Seq");
    ASSERT_NE(seq, nullptr);
    const int64_t s = seq->AsInt();
    ASSERT_GE(s, 0);
    ASSERT_LT(s, kThreads * kPerThread);
    ++seen[static_cast<size_t>(s)];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(WalDatabaseTest, CheckpointsWhileWritersRun) {
  FaultVfs vfs(10);
  constexpr int kThreads = 3;
  constexpr int kPerThread = 30;
  {
    auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
    ASSERT_TRUE(wdb.ok());
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wdb, t] {
        for (int i = 0; i < kPerThread; ++i) {
          ASSERT_TRUE((*wdb)->InsertValue(Rec(t * kPerThread + i)).ok());
        }
      });
    }
    // Rotate the log repeatedly under live write traffic. Readers and
    // writers keep running; recovery below proves no record is lost in
    // a rotation window.
    for (int c = 0; c < 4; ++c) ASSERT_TRUE((*wdb)->Checkpoint().ok());
    for (auto& th : threads) th.join();
    ASSERT_TRUE((*wdb)->Commit().ok());
    vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);
  }

  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  EXPECT_EQ((*wdb)->db().size(),
            static_cast<size_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------
// Misc
// ---------------------------------------------------------------------

TEST(WalDatabaseTest, RejectsZeroBatchSize) {
  FaultVfs vfs(11);
  EXPECT_EQ(WalDatabase::Open(&vfs, "db", CommitPolicy{0, true})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(WalDatabaseTest, DestructorFlushesTheOpenBatch) {
  FaultVfs vfs(12);
  {
    auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{100, true});
    ASSERT_TRUE(wdb.ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    EXPECT_EQ((*wdb)->pending_in_batch(), 3u);
    // Clean shutdown: the destructor commits the tail batch.
  }
  vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  EXPECT_EQ((*wdb)->db().size(), 3u);
}

TEST(WalDatabaseTest, AFailedAppendVetoesTheWriteBeforePublication) {
  FaultVfs vfs(12);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE((*wdb)->InsertValue(Rec(0)).ok());
  const uint64_t epoch_before = (*wdb)->db().epoch();

  // Fail the very next mutating op: the WAL append of the insert
  // below. The write observer runs BEFORE the in-memory mutation, so
  // the failed append must veto the insert entirely — memory may never
  // silently run ahead of a log that did not record the write.
  vfs.CrashAtMutatingOp(1);
  auto vetoed = (*wdb)->InsertValue(Rec(1));
  EXPECT_FALSE(vetoed.ok());
  // Registrations ride the same observer and are vetoed the same way.
  EXPECT_FALSE((*wdb)->RegisterExtent("recs", RecT()).ok());
  vfs.ClearCrash();

  // Clean rollback: no entry, no extent, no epoch tick — and the WAL
  // is sticky-poisoned so later writes cannot quietly diverge either.
  EXPECT_EQ((*wdb)->db().size(), 1u);
  EXPECT_EQ((*wdb)->db().epoch(), epoch_before);
  EXPECT_TRUE((*wdb)->db().ExtentNames().empty());
  EXPECT_FALSE((*wdb)->wal_status().ok());
  EXPECT_FALSE((*wdb)->InsertValue(Rec(2)).ok());

  // A checkpoint rebuilds the log from the (consistent) in-memory
  // state and heals the poison; writes resume.
  ASSERT_TRUE((*wdb)->Checkpoint().ok());
  ASSERT_TRUE((*wdb)->wal_status().ok());
  ASSERT_TRUE((*wdb)->InsertValue(Rec(2)).ok());

  // Recovery agrees with memory exactly: the vetoed write is in
  // neither, the post-heal write is in both.
  vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);
  auto reopened = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->db().size(), 2u);
  EXPECT_TRUE((*reopened)->db().ExtentNames().empty());
}

}  // namespace
}  // namespace dbpl::persist
