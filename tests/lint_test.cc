// Tests for the static-analysis framework (lang/analysis/): the
// seeded-defect corpus under tests/lint_corpus/, span accuracy, text
// rendering, and the --json schema round-trip.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lang/analysis/driver.h"
#include "lang/interp.h"

namespace dbpl::lang {
namespace {

namespace fs = std::filesystem;

#ifndef DBPL_LINT_CORPUS_DIR
#error "DBPL_LINT_CORPUS_DIR must be defined by the build"
#endif

std::string ReadFile(const fs::path& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

/// One `-- expect: CODE @ L:C` line from a corpus file.
struct Expectation {
  std::string code;
  int line = 0;
  int column = 0;

  bool operator<(const Expectation& other) const {
    return std::tie(line, column, code) <
           std::tie(other.line, other.column, other.code);
  }
  bool operator==(const Expectation& other) const {
    return code == other.code && line == other.line && column == other.column;
  }
};

std::ostream& operator<<(std::ostream& os, const Expectation& e) {
  return os << e.code << " @ " << e.line << ":" << e.column;
}

/// Parses the expectation comments out of a corpus file. Sets
/// `expect_none` when the file declares itself clean.
std::vector<Expectation> ParseExpectations(const std::string& source,
                                           bool* expect_none) {
  std::vector<Expectation> expectations;
  *expect_none = false;
  std::istringstream lines(source);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("-- expect-none") != std::string::npos) {
      *expect_none = true;
      continue;
    }
    size_t at = line.find("-- expect: ");
    if (at == std::string::npos) continue;
    std::istringstream spec(line.substr(at + 11));
    Expectation e;
    char sep = 0;
    std::string marker;
    spec >> e.code >> marker >> e.line >> sep >> e.column;
    EXPECT_TRUE(spec && marker == "@" && sep == ':')
        << "malformed expectation: " << line;
    expectations.push_back(e);
  }
  return expectations;
}

/// Every corpus file must produce exactly its expected findings — same
/// codes, same line:column spans, nothing extra (zero false positives).
TEST(LintCorpus, EveryFileMatchesItsExpectations) {
  AnalysisDriver driver;
  int files = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(DBPL_LINT_CORPUS_DIR)) {
    if (entry.path().extension() != ".mam") continue;
    ++files;
    SCOPED_TRACE(entry.path().filename().string());
    std::string source = ReadFile(entry.path());
    bool expect_none = false;
    std::vector<Expectation> expected = ParseExpectations(source, &expect_none);
    EXPECT_TRUE(expect_none || !expected.empty())
        << "corpus file declares no expectations";
    if (expect_none) EXPECT_TRUE(expected.empty());

    AnalysisResult result = driver.Analyze(source);
    std::vector<Expectation> actual;
    for (const Diagnostic& d : result.diagnostics) {
      actual.push_back({d.code, d.span.line, d.span.column});
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(actual, expected);
  }
  // The corpus must actually exist (guards against a bad path macro).
  EXPECT_GE(files, 10);
}

TEST(LintDriver, FrontEndErrorBecomesDl000) {
  AnalysisDriver driver;
  AnalysisResult result = driver.Analyze("let x = ;");
  EXPECT_FALSE(result.front_end_ok);
  EXPECT_TRUE(result.HasErrors());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].code, "DL000");
  EXPECT_EQ(result.diagnostics[0].severity, Severity::kError);
}

TEST(LintDriver, DiagnosticsAreSortedByPosition) {
  AnalysisDriver driver;
  AnalysisResult result = driver.Analyze(
      "let db = database;\n"
      "get Int from db;\n"
      "let d = dynamic 1;\n"
      "let s = coerce d to String;\n"
      "s;\n");
  ASSERT_EQ(result.diagnostics.size(), 2u);
  EXPECT_EQ(result.diagnostics[0].code, "DL002");
  EXPECT_EQ(result.diagnostics[1].code, "DL001");
  EXPECT_LT(result.diagnostics[0].span, result.diagnostics[1].span);
}

TEST(LintRender, TextShowsCaretUnderTheSpan) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = "DL004";
  d.message = "'x' is bound but never used";
  d.span = Span{1, 5, 1, 6};
  std::string text = RenderText(d, "let x = 1 in 2;\n", "prog.mam");
  EXPECT_NE(text.find("prog.mam:1:5: warning:"), std::string::npos) << text;
  EXPECT_NE(text.find("[DL004]"), std::string::npos) << text;
  EXPECT_NE(text.find("  let x = 1 in 2;\n"), std::string::npos) << text;
  // Caret in column 5 (after the two-space gutter).
  EXPECT_NE(text.find("\n      ^"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// --json schema round-trip, via a minimal reader just strong enough
// for the linter's output (flat objects, one array, JsonEscape's
// escapes, non-negative integers).
// ---------------------------------------------------------------------------

/// Value of scalar key `key` inside `object` (raw text; keys are
/// unique per object in this schema). Strings come back unescaped of
/// their quotes but with escape sequences intact.
std::string RawField(std::string_view object, std::string_view key) {
  std::string needle = "\"" + std::string(key) + "\": ";
  size_t at = object.find(needle);
  if (at == std::string_view::npos) return "";
  size_t start = at + needle.size();
  size_t end = start;
  if (object[start] == '"') {
    ++end;
    while (end < object.size() &&
           (object[end] != '"' || object[end - 1] == '\\')) {
      ++end;
    }
    return std::string(object.substr(start + 1, end - start - 1));
  }
  while (end < object.size() &&
         std::isdigit(static_cast<unsigned char>(object[end])) != 0) {
    ++end;
  }
  return std::string(object.substr(start, end - start));
}

/// Splits the "diagnostics" array into its top-level objects.
std::vector<std::string> DiagnosticObjects(std::string_view text) {
  std::vector<std::string> objects;
  size_t array = text.find("\"diagnostics\": [");
  if (array == std::string_view::npos) return objects;
  int depth = 0;
  size_t start = 0;
  bool in_string = false;
  for (size_t i = array + 16; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) objects.emplace_back(text.substr(start, i - start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return objects;
}

TEST(LintJson, RoundTripsThroughTheDocumentedSchema) {
  AnalysisDriver driver;
  const std::string source =
      "let d = dynamic \"s\";\n"
      "let f = fun (u: Int) : Int => coerce d to Int;\n"
      "let x = 1 in 2;\n";
  AnalysisResult result = driver.Analyze(source);
  ASSERT_EQ(result.diagnostics.size(), 2u);

  std::string json = RenderJson(result.diagnostics, "prog.mam");
  EXPECT_EQ(RawField(json, "file"), "prog.mam");
  EXPECT_EQ(RawField(json, "errors"), "0");
  EXPECT_EQ(RawField(json, "warnings"), "2");

  std::vector<std::string> objects = DiagnosticObjects(json);
  ASSERT_EQ(objects.size(), result.diagnostics.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    EXPECT_EQ(RawField(objects[i], "severity"),
              std::string(SeverityName(d.severity)));
    EXPECT_EQ(RawField(objects[i], "code"), d.code);
    EXPECT_EQ(RawField(objects[i], "line"), std::to_string(d.span.line));
    EXPECT_EQ(RawField(objects[i], "column"), std::to_string(d.span.column));
    EXPECT_EQ(RawField(objects[i], "endLine"),
              std::to_string(d.span.end_line));
    EXPECT_EQ(RawField(objects[i], "endColumn"),
              std::to_string(d.span.end_column));
    EXPECT_FALSE(RawField(objects[i], "message").empty());
  }
}

TEST(LintJson, EscapesMessages) {
  std::vector<Diagnostic> diags(1);
  diags[0].code = "DL000";
  diags[0].severity = Severity::kError;
  diags[0].message = "a \"quoted\"\nmessage\twith\\escapes";
  std::string json = RenderJson(diags, "a\"b.mam");
  EXPECT_NE(json.find("a \\\"quoted\\\"\\nmessage\\twith\\\\escapes"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"file\": \"a\\\"b.mam\""), std::string::npos) << json;
  EXPECT_EQ(RawField(json, "errors"), "1");
}

/// Interp surfaces the findings as rendered warnings while still
/// running the (well-typed) program.
TEST(LintInterp, WarningsFlowThroughInterpOutput) {
  Interp interp;
  // The refuted coercion sits in a function body that is never called,
  // so the program runs fine while the lint still sees it.
  auto out = interp.Run(
      "let d = dynamic 3;\n"
      "let f = fun (u: Int) : {Name: String} => coerce d to {Name: String};\n"
      "let x = 1 in 2;\n");
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->warnings.size(), 2u);
  EXPECT_NE(out->warnings[0].find("[DL001]"), std::string::npos)
      << out->warnings[0];
  EXPECT_NE(out->warnings[1].find("[DL004]"), std::string::npos)
      << out->warnings[1];
  ASSERT_EQ(out->values.size(), 1u);
  EXPECT_EQ(out->values[0], "2");
}

}  // namespace
}  // namespace dbpl::lang
