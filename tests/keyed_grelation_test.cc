#include "core/keyed_grelation.h"

#include <gtest/gtest.h>

#include "core/order.h"
#include "relational/relation.h"
#include "test_util.h"

namespace dbpl::core {
namespace {

Value S(const char* s) { return Value::String(s); }

TEST(KeyedGRelationTest, RequiresNonEmptyKey) {
  EXPECT_FALSE(KeyedGRelation::Make({}).ok());
  EXPECT_TRUE(KeyedGRelation::Make({"Name"}).ok());
}

TEST(KeyedGRelationTest, InsertNewEntities) {
  auto r = KeyedGRelation::Make({"Name"});
  ASSERT_TRUE(r.ok());
  auto o1 = r->Insert(Value::RecordOf({{"Name", S("J Doe")}}));
  ASSERT_TRUE(o1.ok());
  EXPECT_EQ(*o1, KeyedGRelation::InsertOutcome::kInserted);
  auto o2 = r->Insert(Value::RecordOf({{"Name", S("M Dee")}}));
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o2, KeyedGRelation::InsertOutcome::kInserted);
  EXPECT_EQ(r->size(), 2u);
  EXPECT_TRUE(r->CheckInvariant().ok());
}

TEST(KeyedGRelationTest, SameKeyMergesInformation) {
  // Two partial facts about J Doe accumulate on one entity — the
  // upsert classical databases approximate with update-in-place.
  auto r = KeyedGRelation::Make({"Name"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(
      r->Insert(Value::RecordOf({{"Name", S("J Doe")}, {"Dept", S("Sales")}}))
          .ok());
  auto merged = r->Insert(
      Value::RecordOf({{"Name", S("J Doe")}, {"Empno", Value::Int(1234)}}));
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, KeyedGRelation::InsertOutcome::kMerged);
  EXPECT_EQ(r->size(), 1u);
  auto entity = r->Lookup(Value::RecordOf({{"Name", S("J Doe")}}));
  ASSERT_TRUE(entity.ok());
  EXPECT_EQ(*entity, Value::RecordOf({{"Name", S("J Doe")},
                                      {"Dept", S("Sales")},
                                      {"Empno", Value::Int(1234)}}));
  EXPECT_TRUE(r->CheckInvariant().ok());
}

TEST(KeyedGRelationTest, SameKeyContradictionRejected) {
  auto r = KeyedGRelation::Make({"Name"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(
      r->Insert(Value::RecordOf({{"Name", S("J Doe")}, {"Dept", S("Sales")}}))
          .ok());
  auto bad = r->Insert(
      Value::RecordOf({{"Name", S("J Doe")}, {"Dept", S("Admin")}}));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInconsistent);
  // The stored entity is unchanged.
  auto entity = r->Lookup(Value::RecordOf({{"Name", S("J Doe")}}));
  EXPECT_EQ(entity->FindField("Dept")->AsString(), "Sales");
}

TEST(KeyedGRelationTest, DominatedInsertAbsorbed) {
  auto r = KeyedGRelation::Make({"Name"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(
      r->Insert(Value::RecordOf({{"Name", S("J Doe")}, {"Dept", S("Sales")}}))
          .ok());
  auto weaker = r->Insert(Value::RecordOf({{"Name", S("J Doe")}}));
  ASSERT_TRUE(weaker.ok());
  EXPECT_EQ(*weaker, KeyedGRelation::InsertOutcome::kAbsorbed);
  EXPECT_EQ(r->size(), 1u);
}

TEST(KeyedGRelationTest, MissingKeyRejected) {
  auto r = KeyedGRelation::Make({"Name"});
  ASSERT_TRUE(r.ok());
  auto bad = r->Insert(Value::RecordOf({{"Dept", S("Sales")}}));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(r->Insert(Value::Int(3)).ok());
}

TEST(KeyedGRelationTest, CompositeKeys) {
  auto r = KeyedGRelation::Make({"Dept", "Name"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->Insert(Value::RecordOf({{"Name", S("J")},
                                         {"Dept", S("Sales")},
                                         {"Room", Value::Int(1)}}))
                  .ok());
  // Same name, different department: a different entity.
  auto other = r->Insert(
      Value::RecordOf({{"Name", S("J")}, {"Dept", S("Admin")}}));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(*other, KeyedGRelation::InsertOutcome::kInserted);
  EXPECT_EQ(r->size(), 2u);
}

TEST(KeyedGRelationTest, LookupByKey) {
  auto r = KeyedGRelation::Make({"Name"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(
      r->Insert(Value::RecordOf({{"Name", S("J Doe")}, {"Dept", S("Sales")}}))
          .ok());
  EXPECT_TRUE(r->Lookup(Value::RecordOf({{"Name", S("J Doe")}})).ok());
  EXPECT_EQ(r->Lookup(Value::RecordOf({{"Name", S("Nobody")}}))
                .status()
                .code(),
            StatusCode::kNotFound);
}

// On flat total records, keyed generalized relations behave exactly
// like classical keyed 1NF relations.
TEST(KeyedGRelationTest, DegeneratesToClassicalKeysOnTotalRecords) {
  using relational::AtomType;
  using relational::Relation;
  using relational::Schema;
  auto classical = Relation::WithKey(
      Schema::Of({{"Name", AtomType::kString}, {"Dept", AtomType::kString}}),
      {"Name"});
  ASSERT_TRUE(classical.ok());
  auto generalized = KeyedGRelation::Make({"Name"});
  ASSERT_TRUE(generalized.ok());

  struct Row {
    const char* name;
    const char* dept;
  };
  const Row rows[] = {{"a", "Sales"}, {"b", "Manuf"}, {"a", "Sales"},
                      {"a", "Admin"}, {"c", "Sales"}};
  for (const Row& row : rows) {
    Status s1 = classical->Insert({S(row.name), S(row.dept)});
    auto s2 = generalized->Insert(
        Value::RecordOf({{"Name", S(row.name)}, {"Dept", S(row.dept)}}));
    EXPECT_EQ(s1.ok(), s2.ok()) << row.name << "/" << row.dept;
  }
  EXPECT_EQ(classical->size(), generalized->size());
}

// Property: the keyed invariant holds under arbitrary insert streams.
class KeyedGRelationPropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, KeyedGRelationPropertyTest,
                         ::testing::Values(5, 17, 29, 41));

TEST_P(KeyedGRelationPropertyTest, InvariantUnderRandomInserts) {
  dbpl::testing::Rng rng(GetParam());
  auto r = KeyedGRelation::Make({"Name"});
  ASSERT_TRUE(r.ok());
  int accepted = 0;
  for (int i = 0; i < 80; ++i) {
    Value v = dbpl::testing::RandomRecord(rng);
    if (v.FindField("Name") == nullptr) {
      v = v.WithField("Name", S("fixed"));
    }
    auto outcome = r->Insert(v);
    if (outcome.ok()) ++accepted;
    ASSERT_TRUE(r->CheckInvariant().ok());
  }
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace dbpl::core
