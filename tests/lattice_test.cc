#include "types/lattice.h"

#include <gtest/gtest.h>

#include <vector>

#include "types/subtype.h"
#include "types/type.h"

namespace dbpl::types {
namespace {

Type Person() {
  return Type::RecordOf({{"Name", Type::String()}});
}
Type Employee() {
  return Type::RecordOf({{"Name", Type::String()}, {"Empno", Type::Int()}});
}
Type Student() {
  return Type::RecordOf({{"Name", Type::String()}, {"StudentId", Type::Int()}});
}

TEST(LatticeTest, LubOfComparableIsUpper) {
  EXPECT_EQ(Lub(Employee(), Person()), Person());
  EXPECT_EQ(Lub(Person(), Employee()), Person());
  EXPECT_EQ(Lub(Type::Bottom(), Type::Int()), Type::Int());
  EXPECT_EQ(Lub(Type::Int(), Type::Top()), Type::Top());
}

TEST(LatticeTest, LubOfSiblingsIsCommonFields) {
  // Employee ∨ Student = Person (their common structure).
  EXPECT_EQ(Lub(Employee(), Student()), Person());
}

TEST(LatticeTest, LubOfUnrelatedAtomsIsTop) {
  EXPECT_EQ(Lub(Type::Int(), Type::String()), Type::Top());
  EXPECT_EQ(Lub(Type::Int(), Person()), Type::Top());
}

TEST(LatticeTest, LubOfCollections) {
  EXPECT_EQ(Lub(Type::List(Employee()), Type::List(Student())),
            Type::List(Person()));
  EXPECT_EQ(Lub(Type::Set(Employee()), Type::Set(Student())),
            Type::Set(Person()));
}

TEST(LatticeTest, LubOfFunctions) {
  Type f = Type::Func({Person()}, Employee());
  Type g = Type::Func({Employee()}, Student());
  // Lub params = Glb(Person, Employee) = Employee; Lub results = Person.
  EXPECT_EQ(Lub(f, g), Type::Func({Employee()}, Person()));
}

TEST(LatticeTest, LubIsUpperBound) {
  std::vector<Type> samples = {Person(),
                               Employee(),
                               Student(),
                               Type::Int(),
                               Type::List(Employee()),
                               Type::RecordOf({}),
                               Type::Set(Type::Int())};
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      Type l = Lub(a, b);
      EXPECT_TRUE(IsSubtype(a, l)) << a << " !≤ lub " << l;
      EXPECT_TRUE(IsSubtype(b, l)) << b << " !≤ lub " << l;
      EXPECT_TRUE(TypeEquiv(Lub(a, b), Lub(b, a)));
      EXPECT_TRUE(TypeEquiv(Lub(a, a), a));
    }
  }
}

TEST(LatticeTest, GlbOfComparableIsLower) {
  EXPECT_EQ(*Glb(Employee(), Person()), Employee());
  EXPECT_EQ(*Glb(Person(), Employee()), Employee());
}

TEST(LatticeTest, GlbOfSiblingsMergesFields) {
  // The "working student": both an Employee and a Student.
  Result<Type> g = Glb(Employee(), Student());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(*g, Type::RecordOf({{"Name", Type::String()},
                                {"Empno", Type::Int()},
                                {"StudentId", Type::Int()}}));
}

TEST(LatticeTest, GlbFailsOnContradiction) {
  EXPECT_FALSE(Glb(Type::Int(), Type::String()).ok());
  // Records whose shared field types clash have no common subtype.
  Type a = Type::RecordOf({{"x", Type::Int()}});
  Type b = Type::RecordOf({{"x", Type::String()}});
  Result<Type> g = Glb(a, b);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInconsistent);
  EXPECT_FALSE(ConsistentTypes(a, b));
  EXPECT_TRUE(ConsistentTypes(Employee(), Student()));
}

TEST(LatticeTest, GlbIsLowerBound) {
  std::vector<Type> samples = {Person(), Employee(), Student(),
                               Type::RecordOf({}), Type::List(Person())};
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      Result<Type> g = Glb(a, b);
      if (!g.ok()) continue;
      EXPECT_TRUE(IsSubtype(*g, a)) << *g << " !≤ " << a;
      EXPECT_TRUE(IsSubtype(*g, b)) << *g << " !≤ " << b;
      // Any common lower bound in the sample set is below the glb.
      for (const auto& l : samples) {
        if (IsSubtype(l, a) && IsSubtype(l, b)) {
          EXPECT_TRUE(IsSubtype(l, *g));
        }
      }
    }
  }
}

TEST(LatticeTest, SchemaEvolutionScenario) {
  // The paper's "Persistent Pascal" discussion: DBType' is consistent
  // with DBType (common subtype), so recompilation enriches the schema.
  Type db_v1 = Type::RecordOf(
      {{"Employees", Type::Set(Employee())}});
  Type db_v2 = Type::RecordOf(
      {{"Employees", Type::Set(Employee())},
       {"Departments", Type::Set(Type::RecordOf({{"Dept", Type::String()}}))}});
  // v2 is a plain subtype: always compatible.
  EXPECT_TRUE(IsSubtype(db_v2, db_v1));
  // A third version adding different information is merely *consistent*.
  Type db_v3 = Type::RecordOf(
      {{"Employees", Type::Set(Employee())},
       {"Projects", Type::Set(Type::String())}});
  EXPECT_FALSE(IsSubtype(db_v3, db_v2));
  EXPECT_FALSE(IsSubtype(db_v2, db_v3));
  ASSERT_TRUE(ConsistentTypes(db_v2, db_v3));
  Result<Type> merged = Glb(db_v2, db_v3);
  ASSERT_TRUE(merged.ok());
  EXPECT_NE(merged->FindField("Departments"), nullptr);
  EXPECT_NE(merged->FindField("Projects"), nullptr);
  // A contradictory redefinition is rejected.
  Type db_bad = Type::RecordOf({{"Employees", Type::Int()}});
  EXPECT_FALSE(ConsistentTypes(db_v2, db_bad));
}

TEST(LatticeTest, GlbOfVariantsIntersectsTags) {
  Type a = Type::VariantOf({{"x", Type::Int()}, {"y", Type::Bool()}});
  Type b = Type::VariantOf({{"y", Type::Bool()}, {"z", Type::String()}});
  Result<Type> g = Glb(a, b);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(*g, Type::VariantOf({{"y", Type::Bool()}}));
  Type c = Type::VariantOf({{"w", Type::Int()}});
  EXPECT_FALSE(Glb(a, c).ok());
}

TEST(LatticeTest, LubOfVariantsUnionsTags) {
  Type a = Type::VariantOf({{"x", Type::Int()}});
  Type b = Type::VariantOf({{"y", Type::Bool()}});
  EXPECT_EQ(Lub(a, b),
            Type::VariantOf({{"x", Type::Int()}, {"y", Type::Bool()}}));
}

}  // namespace
}  // namespace dbpl::types
