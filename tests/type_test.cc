#include "types/type.h"

#include <gtest/gtest.h>

namespace dbpl::types {
namespace {

Type PersonType() {
  return Type::RecordOf({{"Name", Type::String()},
                         {"Address", Type::RecordOf({{"City", Type::String()}})}});
}

TEST(TypeTest, DefaultIsBottom) {
  Type t;
  EXPECT_TRUE(t.is_bottom());
  EXPECT_EQ(t, Type::Bottom());
}

TEST(TypeTest, BaseTypesDistinct) {
  std::vector<Type> bases = {Type::Bottom(), Type::Top(),    Type::Bool(),
                             Type::Int(),    Type::Real(),   Type::String(),
                             Type::Dynamic()};
  for (size_t i = 0; i < bases.size(); ++i) {
    for (size_t j = 0; j < bases.size(); ++j) {
      if (i == j) {
        EXPECT_EQ(bases[i], bases[j]);
      } else {
        EXPECT_NE(bases[i], bases[j]);
      }
    }
  }
}

TEST(TypeTest, RecordFieldsSortedAndDupsRejected) {
  Type t = Type::RecordOf({{"z", Type::Int()}, {"a", Type::Bool()}});
  EXPECT_EQ(t.fields()[0].name, "a");
  EXPECT_EQ(t.fields()[1].name, "z");
  EXPECT_FALSE(Type::Record({{"x", Type::Int()}, {"x", Type::Int()}}).ok());
  EXPECT_FALSE(Type::Variant({{"x", Type::Int()}, {"x", Type::Int()}}).ok());
}

TEST(TypeTest, FindField) {
  Type t = PersonType();
  ASSERT_NE(t.FindField("Name"), nullptr);
  EXPECT_EQ(*t.FindField("Name"), Type::String());
  EXPECT_EQ(t.FindField("Nope"), nullptr);
  EXPECT_EQ(Type::Int().FindField("x"), nullptr);
}

TEST(TypeTest, AccessorsRoundTrip) {
  Type f = Type::Func({Type::Int(), Type::Bool()}, Type::String());
  EXPECT_EQ(f.params().size(), 2u);
  EXPECT_EQ(f.result(), Type::String());
  EXPECT_EQ(Type::List(Type::Int()).element(), Type::Int());
  EXPECT_EQ(Type::Set(Type::Int()).element(), Type::Int());
  EXPECT_EQ(Type::RefTo(Type::Int()).element(), Type::Int());
  Type q = Type::Forall("t", PersonType(), Type::Var("t"));
  EXPECT_EQ(q.var(), "t");
  EXPECT_EQ(q.bound(), PersonType());
  EXPECT_EQ(q.body(), Type::Var("t"));
}

TEST(TypeTest, FreeVars) {
  Type t = Type::Forall(
      "t", Type::Var("b"),
      Type::Func({Type::Var("t")}, Type::List(Type::Var("u"))));
  auto fv = t.FreeVars();
  EXPECT_TRUE(fv.contains("b"));
  EXPECT_TRUE(fv.contains("u"));
  EXPECT_FALSE(fv.contains("t"));
}

TEST(TypeTest, SubstituteReplacesFreeOccurrences) {
  Type body = Type::Func({Type::Var("t")}, Type::Var("t"));
  Type subst = body.Substitute("t", Type::Int());
  EXPECT_EQ(subst, Type::Func({Type::Int()}, Type::Int()));
}

TEST(TypeTest, SubstituteRespectsShadowing) {
  // In `Forall t. t -> u`, substituting for t must not touch the bound
  // occurrences.
  Type t = Type::Forall("t", Type::Func({Type::Var("t")}, Type::Var("u")));
  Type subst = t.Substitute("t", Type::Int());
  EXPECT_EQ(subst.body(), Type::Func({Type::Var("t")}, Type::Var("u")));
  // But the free variable u is replaced.
  Type subst2 = t.Substitute("u", Type::Int());
  EXPECT_EQ(subst2.body(), Type::Func({Type::Var("t")}, Type::Int()));
}

TEST(TypeTest, SubstituteAvoidsCapture) {
  // Substituting u := t into `Forall t. u` must not capture: the result
  // body must still refer to the *free* t, not the binder.
  Type t = Type::Forall("t", Type::Var("u"));
  Type subst = t.Substitute("u", Type::Var("t"));
  EXPECT_NE(subst.var(), "t");  // binder was renamed
  EXPECT_EQ(subst.body(), Type::Var("t"));
  auto fv = subst.FreeVars();
  EXPECT_TRUE(fv.contains("t"));
}

TEST(TypeTest, MuUnfold) {
  // IntList = Mu l. Variant<nil: Top | cons: {head: Int, tail: l}>.
  Type l = Type::Mu(
      "l", Type::VariantOf(
               {{"nil", Type::Top()},
                {"cons", Type::RecordOf(
                             {{"head", Type::Int()}, {"tail", Type::Var("l")}})}}));
  Type unfolded = l.Unfold();
  EXPECT_EQ(unfolded.kind(), TypeKind::kVariant);
  const Type* cons = unfolded.FindField("cons");
  ASSERT_NE(cons, nullptr);
  EXPECT_EQ(*cons->FindField("tail"), l);
}

TEST(TypeTest, ToStringRendering) {
  EXPECT_EQ(PersonType().ToString(),
            "{Address: {City: String}, Name: String}");
  EXPECT_EQ(Type::Func({Type::Int()}, Type::Bool()).ToString(),
            "(Int) -> Bool");
  EXPECT_EQ(Type::List(Type::Int()).ToString(), "List[Int]");
  EXPECT_EQ(Type::Forall("t", Type::Var("t")).ToString(), "Forall t. t");
  EXPECT_EQ(Type::Exists("t", Type::Int(), Type::Var("t")).ToString(),
            "Exists t <= Int. t");
  EXPECT_EQ(Type::Mu("l", Type::Var("l")).ToString(), "Mu l. l");
  EXPECT_EQ(Type::VariantOf({{"a", Type::Int()}, {"b", Type::Bool()}})
                .ToString(),
            "<a: Int | b: Bool>");
}

TEST(TypeTest, GetTypeFromThePaperRendersReadably) {
  // ∀t. Database → List[∃t' ≤ t. t']
  Type database = Type::List(Type::Dynamic());
  Type get = Type::Forall(
      "t", Type::Func({database},
                      Type::List(Type::Exists("u", Type::Var("t"),
                                              Type::Var("u")))));
  EXPECT_EQ(get.ToString(),
            "Forall t. (List[Dynamic]) -> List[Exists u <= t. u]");
}

TEST(TypeTest, CompareIsConsistentWithEquality) {
  Type a = PersonType();
  Type b = PersonType();
  EXPECT_EQ(Compare(a, b), 0);
  EXPECT_EQ(a.Hash(), b.Hash());
  Type c = Type::RecordOf({{"Name", Type::String()}});
  EXPECT_NE(Compare(a, c), 0);
  EXPECT_EQ(Compare(a, c) < 0, Compare(c, a) > 0);
}

}  // namespace
}  // namespace dbpl::types
