#include "core/heap.h"

#include <gtest/gtest.h>

#include "core/order.h"
#include "core/value.h"

namespace dbpl::core {
namespace {

Value Str(const char* s) { return Value::String(s); }

TEST(HeapTest, AllocateAndGet) {
  Heap heap;
  Oid a = heap.Allocate(Value::Int(1));
  Oid b = heap.Allocate(Value::Int(2));
  EXPECT_NE(a, b);
  EXPECT_NE(a, kInvalidOid);
  EXPECT_EQ(*heap.Get(a), Value::Int(1));
  EXPECT_EQ(*heap.Get(b), Value::Int(2));
  EXPECT_EQ(heap.size(), 2u);
}

TEST(HeapTest, GetMissingReportsNotFound) {
  Heap heap;
  EXPECT_EQ(heap.Get(99).status().code(), StatusCode::kNotFound);
}

TEST(HeapTest, PutReplaces) {
  Heap heap;
  Oid a = heap.Allocate(Value::Int(1));
  ASSERT_TRUE(heap.Put(a, Str("now a string")).ok());
  EXPECT_EQ(*heap.Get(a), Str("now a string"));
  EXPECT_EQ(heap.Put(123, Value::Int(0)).code(), StatusCode::kNotFound);
}

TEST(HeapTest, IdentityIndependentOfContent) {
  // The paper's parking-lot scenario: two identical cars must be able to
  // coexist because objects are not identified by intrinsic properties.
  Heap heap;
  Value car = Value::RecordOf({{"MakeModel", Str("Chevy Nova")}});
  Oid c1 = heap.Allocate(car);
  Oid c2 = heap.Allocate(car);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(*heap.Get(c1), *heap.Get(c2));
  EXPECT_EQ(heap.size(), 2u);
}

TEST(HeapTest, ExtendIsObjectLevelInheritance) {
  // Turning a Person into an Employee in place: every reference sees it.
  Heap heap;
  Oid p = heap.Allocate(Value::RecordOf({{"Name", Str("J Doe")}}));
  Result<Value> extended =
      heap.Extend(p, Value::RecordOf({{"Emp_no", Value::Int(1234)}}));
  ASSERT_TRUE(extended.ok());
  Value expect = Value::RecordOf(
      {{"Name", Str("J Doe")}, {"Emp_no", Value::Int(1234)}});
  EXPECT_EQ(*extended, expect);
  EXPECT_EQ(*heap.Get(p), expect);
  // The old value is below the new one: information was only added.
  EXPECT_TRUE(LessEq(Value::RecordOf({{"Name", Str("J Doe")}}), *heap.Get(p)));
}

TEST(HeapTest, ExtendRejectsContradiction) {
  Heap heap;
  Oid p = heap.Allocate(Value::RecordOf({{"Name", Str("J Doe")}}));
  Result<Value> r = heap.Extend(p, Value::RecordOf({{"Name", Str("K Smith")}}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInconsistent);
  // Object unchanged after the failed extension.
  EXPECT_EQ(*heap.Get(p), Value::RecordOf({{"Name", Str("J Doe")}}));
}

TEST(HeapTest, DeleteRemoves) {
  Heap heap;
  Oid a = heap.Allocate(Value::Int(1));
  ASSERT_TRUE(heap.Delete(a).ok());
  EXPECT_EQ(heap.Get(a).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(heap.Delete(a).code(), StatusCode::kNotFound);
}

TEST(HeapTest, AllocateWithOid) {
  Heap heap;
  ASSERT_TRUE(heap.AllocateWithOid(10, Value::Int(1)).ok());
  EXPECT_EQ(*heap.Get(10), Value::Int(1));
  EXPECT_EQ(heap.AllocateWithOid(10, Value::Int(2)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(heap.AllocateWithOid(kInvalidOid, Value::Int(2)).code(),
            StatusCode::kInvalidArgument);
  // Fresh allocations never collide with explicitly placed oids.
  Oid fresh = heap.Allocate(Value::Int(3));
  EXPECT_GT(fresh, 10u);
}

TEST(HeapTest, CollectRefsWalksStructure) {
  Value v = Value::RecordOf(
      {{"a", Value::Ref(1)},
       {"b", Value::List({Value::Ref(2), Value::Set({Value::Ref(3)})})}});
  std::vector<Oid> refs;
  CollectRefs(v, &refs);
  std::sort(refs.begin(), refs.end());
  EXPECT_EQ(refs, (std::vector<Oid>{1, 2, 3}));
}

TEST(HeapTest, ReachabilityFollowsRefChains) {
  Heap heap;
  Oid leaf = heap.Allocate(Value::Int(42));
  Oid mid = heap.Allocate(Value::RecordOf({{"next", Value::Ref(leaf)}}));
  Oid root = heap.Allocate(Value::RecordOf({{"next", Value::Ref(mid)}}));
  Oid island = heap.Allocate(Value::Int(0));
  std::vector<Oid> live = heap.ReachableFrom({root});
  EXPECT_EQ(live, (std::vector<Oid>{leaf, mid, root}));
  EXPECT_EQ(heap.ReachableFrom({island}), (std::vector<Oid>{island}));
}

TEST(HeapTest, ReachabilityHandlesCycles) {
  Heap heap;
  Oid a = heap.Allocate(Value::Bottom());
  Oid b = heap.Allocate(Value::RecordOf({{"peer", Value::Ref(a)}}));
  ASSERT_TRUE(heap.Put(a, Value::RecordOf({{"peer", Value::Ref(b)}})).ok());
  std::vector<Oid> live = heap.ReachableFrom({a});
  EXPECT_EQ(live, (std::vector<Oid>{a, b}));
}

TEST(HeapTest, DanglingRefsIgnoredByReachability) {
  Heap heap;
  Oid a = heap.Allocate(Value::Ref(999));
  std::vector<Oid> live = heap.ReachableFrom({a});
  EXPECT_EQ(live, (std::vector<Oid>{a}));
}

TEST(HeapTest, GarbageCollection) {
  Heap heap;
  Oid keep1 = heap.Allocate(Value::Int(1));
  Oid root = heap.Allocate(Value::Ref(keep1));
  heap.Allocate(Value::Int(2));  // garbage
  heap.Allocate(Value::Int(3));  // garbage
  size_t reclaimed = heap.CollectGarbage({root});
  EXPECT_EQ(reclaimed, 2u);
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_TRUE(heap.Contains(keep1));
  EXPECT_TRUE(heap.Contains(root));
}

TEST(HeapTest, GcWithNoRootsReclaimsEverything) {
  Heap heap;
  heap.Allocate(Value::Int(1));
  heap.Allocate(Value::Int(2));
  EXPECT_EQ(heap.CollectGarbage({}), 2u);
  EXPECT_EQ(heap.size(), 0u);
}

}  // namespace
}  // namespace dbpl::core
