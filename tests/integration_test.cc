// Cross-module integration tests: whole-system scenarios that exercise
// several layers at once, mirroring how a downstream user would wire
// the pieces together.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "classes/class_system.h"
#include "core/grelation.h"
#include "core/order.h"
#include "dyndb/database.h"
#include "lang/interp.h"
#include "persist/intrinsic_store.h"
#include "persist/replicating_store.h"
#include "relational/ops.h"
#include "serial/decoder.h"
#include "serial/encoder.h"
#include "types/parse.h"
#include "types/type_of.h"

namespace dbpl {
namespace {

using core::Heap;
using core::Oid;
using core::Value;
using types::ParseType;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/dbpl_integration_" + name + "_" +
         std::to_string(::getpid());
}

// A full lifecycle: classes over a persistent heap, committed,
// reloaded, and queried through the dynamic database — classes, Get
// and persistence agreeing on the same objects.
TEST(IntegrationTest, ClassExtentsSurviveIntrinsicPersistence) {
  const std::string path = TempPath("class_persist");
  std::remove(path.c_str());
  std::vector<Oid> employees;
  {
    auto store = persist::IntrinsicStore::Open(path);
    ASSERT_TRUE(store.ok());
    Heap& heap = (*store)->heap();
    classes::ClassSystem cs(&heap);
    ASSERT_TRUE(cs.DefineVariableClass("Person", *ParseType("{Name: String}"))
                    .ok());
    ASSERT_TRUE(cs.DefineVariableClass(
                      "Employee", *ParseType("{Name: String, Empno: Int}"),
                      {"Person"})
                    .ok());
    for (int i = 0; i < 5; ++i) {
      auto oid = cs.NewInstance(
          "Employee",
          Value::RecordOf({{"Name", Value::String("e" + std::to_string(i))},
                           {"Empno", Value::Int(i)}}));
      ASSERT_TRUE(oid.ok());
      employees.push_back(*oid);
    }
    // Persist the extent as a list-of-refs root (extents are data too).
    std::vector<Value> refs;
    for (Oid oid : employees) refs.push_back(Value::Ref(oid));
    Oid extent_obj = heap.Allocate(Value::List(std::move(refs)));
    ASSERT_TRUE((*store)->SetRoot("employees", extent_obj).ok());
    ASSERT_TRUE((*store)->Commit().ok());
  }
  {
    auto store = persist::IntrinsicStore::Open(path);
    ASSERT_TRUE(store.ok());
    auto root = (*store)->GetRoot("employees");
    ASSERT_TRUE(root.ok());
    Value extent = *(*store)->heap().Get(*root);
    ASSERT_EQ(extent.elements().size(), 5u);
    // Rebuild a dynamic database from the persistent objects and the
    // type hierarchy rederives the extents.
    dyndb::Database db;
    for (const Value& ref : extent.elements()) {
      db.MustInsertValue(*(*store)->heap().Get(ref.AsRef()));
    }
    EXPECT_EQ(db.GetScan(*ParseType("{Name: String}")).size(), 5u);
    EXPECT_EQ(db.GetScan(*ParseType("{Name: String, Empno: Int}")).size(),
              5u);
    EXPECT_EQ(db.GetScan(*ParseType("{Name: String, Empno: Int, X: Int}"))
                  .size(),
              0u);
  }
  std::remove(path.c_str());
}

// MiniAmber programs talking to each other through replicating
// persistence — including the copy-semantics anomaly at language level.
TEST(IntegrationTest, TwoMiniAmberProgramsShareAHandle) {
  const std::string dir = TempPath("lang_share");
  std::string cmd = "rm -rf " + dir;
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  {
    lang::Interp producer(dir);
    auto out = producer.Run(R"(
      let parts = [{Name = "bolt", Price = 0.5},
                   {Name = "nut", Price = 0.25}];
      extern parts as "parts";
    )");
    ASSERT_TRUE(out.ok()) << out.status();
  }
  {
    lang::Interp consumer(dir);
    auto out = consumer.Run(R"(
      type Parts = List[{Name: String, Price: Real}];
      let parts = coerce (intern "parts") to Parts;
      sum(map(fun (p: {Price: Real}) : Real => p.Price, parts));
    )");
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(out->values, (std::vector<std::string>{"0.75"}));
  }
  {
    // A consumer demanding more than was stored is refused: the type
    // travelled with the value.
    lang::Interp consumer(dir);
    auto out = consumer.Run(R"(
      type Rich = List[{Name: String, Price: Real, Weight: Real}];
      coerce (intern "parts") to Rich;
    )");
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kTypeError);
  }
  (void)std::system(cmd.c_str());
}

// Figure 1 computed three ways: core GRelation, value-level set join,
// and MiniAmber's `join`, all agreeing on the same objects.
TEST(IntegrationTest, FigureOneAcrossLayers) {
  auto addr = [](const char* city, const char* state) {
    std::vector<core::RecordField> fs;
    if (city) fs.push_back({"City", Value::String(city)});
    if (state) fs.push_back({"State", Value::String(state)});
    return Value::RecordOf(std::move(fs));
  };
  std::vector<Value> r1 = {
      Value::RecordOf({{"Name", Value::String("J Doe")},
                       {"Dept", Value::String("Sales")},
                       {"Addr", addr("Moose", nullptr)}}),
      Value::RecordOf({{"Name", Value::String("M Dee")},
                       {"Dept", Value::String("Manuf")}}),
      Value::RecordOf({{"Name", Value::String("N Bug")},
                       {"Addr", addr(nullptr, "MT")}}),
  };
  std::vector<Value> r2 = {
      Value::RecordOf({{"Dept", Value::String("Sales")},
                       {"Addr", addr(nullptr, "WY")}}),
      Value::RecordOf({{"Dept", Value::String("Admin")},
                       {"Addr", addr("Billings", nullptr)}}),
      Value::RecordOf({{"Dept", Value::String("Manuf")},
                       {"Addr", addr(nullptr, "MT")}}),
  };

  // Layer 1: operational generalized relations.
  core::GRelation joined = *core::GRelation::Join(
      core::GRelation::FromObjects(r1), core::GRelation::FromObjects(r2));
  EXPECT_EQ(joined.size(), 4u);

  // Layer 2: the value-level set join (Smyth lub). Figure 1's four
  // results are mutually incomparable, so min- and max-reduction agree.
  auto set_join = core::Join(Value::Set(r1), Value::Set(r2));
  ASSERT_TRUE(set_join.ok());
  EXPECT_EQ(*set_join, joined.ToValue());

  // Layer 3: MiniAmber's join on set literals.
  lang::Interp interp;
  auto out = interp.Run(R"(
    let r1 = {| {Name = "J Doe", Dept = "Sales", Addr = {City = "Moose"}},
                {Name = "M Dee", Dept = "Manuf"},
                {Name = "N Bug", Addr = {State = "MT"}} |};
    let r2 = {| {Dept = "Sales", Addr = {State = "WY"}},
                {Dept = "Admin", Addr = {City = "Billings"}},
                {Dept = "Manuf", Addr = {State = "MT"}} |};
    length(r1 join r2);
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->values, (std::vector<std::string>{"4"}));
}

// Relational algebra and generalized relations computing the same
// query over the same data.
TEST(IntegrationTest, RelationalAndGeneralizedAgreeOnAQuery) {
  using relational::AtomType;
  using relational::Relation;
  using relational::Schema;
  Relation emp(Schema::Of({{"Name", AtomType::kString},
                           {"Dept", AtomType::kString}}));
  Relation dept(Schema::Of({{"Dept", AtomType::kString},
                            {"City", AtomType::kString}}));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(emp.Insert({Value::String("n" + std::to_string(i)),
                            Value::String(i % 3 == 0 ? "Sales" : "Manuf")})
                    .ok());
  }
  ASSERT_TRUE(dept.Insert({Value::String("Sales"), Value::String("Moose")})
                  .ok());
  ASSERT_TRUE(dept.Insert({Value::String("Manuf"), Value::String("Billings")})
                  .ok());

  // π_Name,City(emp ⋈ dept), both ways.
  auto classical = relational::Project(*relational::NaturalJoin(emp, dept),
                                       {"Name", "City"});
  ASSERT_TRUE(classical.ok());
  core::GRelation generalized =
      *core::GRelation::Join(emp.ToGRelation(), dept.ToGRelation())
           ->Project({"Name", "City"});
  EXPECT_EQ(generalized, classical->ToGRelation());
}

// Serialization + typeof consistency: whatever round-trips keeps its
// principal type.
TEST(IntegrationTest, RoundTrippedValuesKeepTheirType) {
  dyndb::Database db;
  db.MustInsertValue(Value::RecordOf({{"Name", Value::String("x")}}));
  db.MustInsertValue(Value::Int(1));
  db.MustInsertValue(Value::Set({Value::Int(1), Value::Int(2)}));
  for (const auto& d : db.entries()) {
    ByteBuffer buf;
    serial::EncodeDynamic(d, &buf);
    ByteReader in(buf);
    auto back = serial::DecodeDynamic(&in);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->value, d.value);
    EXPECT_EQ(back->type, d.type);
    EXPECT_EQ(types::TypeOf(back->value), back->type);
  }
}

}  // namespace
}  // namespace dbpl
