#include "classes/class_system.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/order.h"
#include "types/parse.h"

namespace dbpl::classes {
namespace {

using core::Heap;
using core::Oid;
using core::Value;
using types::ParseType;
using types::Type;

Value S(const char* s) { return Value::String(s); }

class ClassSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cs_ = std::make_unique<ClassSystem>(&heap_);
    // The Taxis example:
    //   VARIABLE_CLASS EMPLOYEE isa PERSON with Empno: Int, Dept: String.
    ASSERT_TRUE(cs_->DefineVariableClass("Person",
                                         *ParseType("{Name: String}"))
                    .ok());
    ASSERT_TRUE(
        cs_->DefineVariableClass(
               "Employee",
               *ParseType("{Name: String, Empno: Int, Dept: String}"),
               {"Person"})
            .ok());
  }

  Value Person(const char* name) {
    return Value::RecordOf({{"Name", S(name)}});
  }
  Value Employee(const char* name, int64_t no, const char* dept) {
    return Value::RecordOf(
        {{"Name", S(name)}, {"Empno", Value::Int(no)}, {"Dept", S(dept)}});
  }

  Heap heap_;
  std::unique_ptr<ClassSystem> cs_;
};

TEST_F(ClassSystemTest, InstanceJoinsAllSuperclassExtents) {
  // "creating an instance of Employee will also create a new instance
  // of Person" (Adaplex).
  auto emp = cs_->NewInstance("Employee", Employee("J Doe", 1234, "Sales"));
  ASSERT_TRUE(emp.ok()) << emp.status();
  auto persons = cs_->Extent("Person");
  auto employees = cs_->Extent("Employee");
  ASSERT_TRUE(persons.ok());
  ASSERT_TRUE(employees.ok());
  EXPECT_EQ(persons->size(), 1u);
  EXPECT_EQ(employees->size(), 1u);
  EXPECT_EQ((*persons)[0], *emp);
}

TEST_F(ClassSystemTest, ExtentSubsetInvariant) {
  ASSERT_TRUE(cs_->NewInstance("Person", Person("P1")).ok());
  ASSERT_TRUE(cs_->NewInstance("Person", Person("P2")).ok());
  ASSERT_TRUE(
      cs_->NewInstance("Employee", Employee("E1", 1, "Sales")).ok());
  auto persons = cs_->Extent("Person");
  auto employees = cs_->Extent("Employee");
  EXPECT_EQ(persons->size(), 3u);
  EXPECT_EQ(employees->size(), 1u);
  for (Oid e : *employees) {
    EXPECT_NE(std::find(persons->begin(), persons->end(), e), persons->end());
  }
}

TEST_F(ClassSystemTest, TypeChecksOnInstanceCreation) {
  // A mere Person value is not an Employee.
  auto r = cs_->NewInstance("Employee", Person("not enough info"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
  // An int is not a Person.
  EXPECT_FALSE(cs_->NewInstance("Person", Value::Int(3)).ok());
  // Extra fields are fine (structural subtyping).
  EXPECT_TRUE(cs_->NewInstance("Person", Employee("rich", 9, "X")).ok());
}

TEST_F(ClassSystemTest, IsaRequiresStructuralSubtype) {
  // The class hierarchy is derived from the type hierarchy: an isa
  // declaration the types contradict is rejected.
  Status s = cs_->DefineVariableClass("Truck", *ParseType("{Plate: Int}"),
                                      {"Person"});
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_FALSE(cs_->HasClass("Truck"));
  // Unknown parents are rejected too.
  EXPECT_EQ(cs_->DefineVariableClass("X", *ParseType("{}"), {"Nope"}).code(),
            StatusCode::kNotFound);
}

TEST_F(ClassSystemTest, AggregateClassHasNoExtent) {
  ASSERT_TRUE(
      cs_->DefineAggregateClass("Address", *ParseType("{City: String}")).ok());
  EXPECT_EQ(cs_->Extent("Address").status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(cs_->NewInstance("Address",
                             Value::RecordOf({{"City", S("Moose")}}))
                .status()
                .code(),
            StatusCode::kUnsupported);
  // But it still has a type.
  EXPECT_EQ(*cs_->ClassType("Address"), *ParseType("{City: String}"));
}

TEST_F(ClassSystemTest, AdaplexIncludeRetroactively) {
  // Students defined independently, then `include Student in Person`.
  ASSERT_TRUE(cs_->DefineVariableClass(
                     "Student", *ParseType("{Name: String, StudentId: Int}"))
                  .ok());
  ASSERT_TRUE(cs_->NewInstance("Student",
                               Value::RecordOf({{"Name", S("Stu")},
                                                {"StudentId", Value::Int(1)}}))
                  .ok());
  EXPECT_EQ(cs_->Extent("Person")->size(), 0u);
  ASSERT_TRUE(cs_->Include("Student", "Person").ok());
  EXPECT_EQ(cs_->Extent("Person")->size(), 1u);
  EXPECT_TRUE(cs_->IsSubclass("Student", "Person"));
  // Future students flow up automatically.
  ASSERT_TRUE(cs_->NewInstance("Student",
                               Value::RecordOf({{"Name", S("Dent")},
                                                {"StudentId", Value::Int(2)}}))
                  .ok());
  EXPECT_EQ(cs_->Extent("Person")->size(), 2u);
}

TEST_F(ClassSystemTest, IncludeRejectsNonSubtypeAndCycles) {
  ASSERT_TRUE(
      cs_->DefineVariableClass("Thing", *ParseType("{Weight: Int}")).ok());
  EXPECT_EQ(cs_->Include("Thing", "Person").code(), StatusCode::kTypeError);
  EXPECT_EQ(cs_->Include("Person", "Employee").code(),
            StatusCode::kInvalidArgument);  // would create a cycle
}

TEST_F(ClassSystemTest, SpecializePersonIntoEmployee) {
  // The operation the paper notes Amber lacks: extending an object so
  // it belongs to a new subclass, in place.
  auto p = cs_->NewInstance("Person", Person("J Doe"));
  ASSERT_TRUE(p.ok());
  auto e = cs_->Specialize(
      *p, "Employee",
      Value::RecordOf({{"Empno", Value::Int(1234)}, {"Dept", S("Sales")}}));
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(*e, *p);  // same identity
  EXPECT_EQ(cs_->Extent("Employee")->size(), 1u);
  EXPECT_EQ(cs_->Extent("Person")->size(), 1u);  // not duplicated
  // The object's value is the join of old and new information.
  EXPECT_EQ(*heap_.Get(*p), Employee("J Doe", 1234, "Sales"));
}

TEST_F(ClassSystemTest, SpecializeRejectsContradiction) {
  auto p = cs_->NewInstance("Person", Person("J Doe"));
  ASSERT_TRUE(p.ok());
  auto r = cs_->Specialize(
      *p, "Employee",
      Value::RecordOf({{"Name", S("K Smith")}, {"Empno", Value::Int(1)},
                       {"Dept", S("X")}}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInconsistent);
  // The object is unchanged and not in the Employee extent.
  EXPECT_EQ(*heap_.Get(*p), Person("J Doe"));
  EXPECT_EQ(cs_->Extent("Employee")->size(), 0u);
}

TEST_F(ClassSystemTest, SpecializeRejectsInsufficientInformation) {
  auto p = cs_->NewInstance("Person", Person("J Doe"));
  ASSERT_TRUE(p.ok());
  // Joining only an Empno does not make an Employee (Dept missing).
  auto r = cs_->Specialize(*p, "Employee",
                           Value::RecordOf({{"Empno", Value::Int(1)}}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(ClassSystemTest, KeysForbidDuplicatesAcrossTheExtent) {
  Heap heap;
  ClassSystem cs(&heap);
  ASSERT_TRUE(cs.DefineVariableClass("Person", *ParseType("{Name: String}"),
                                     {}, {"Name"})
                  .ok());
  ASSERT_TRUE(cs.NewInstance("Person", Person("J Doe")).ok());
  auto dup = cs.NewInstance("Person", Person("J Doe"));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInconsistent);
  // Missing key attribute is rejected outright.
  ASSERT_TRUE(cs.DefineVariableClass("Pet", *ParseType("{}"), {}, {"Name"})
                  .ok());
  EXPECT_EQ(cs.NewInstance("Pet", Value::RecordOf({})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ClassSystemTest, WithoutKeysComparableObjectsMayCoexist) {
  // The paper's parking lot: without keys, two identical cars coexist
  // because objects are not identified by intrinsic properties.
  auto c1 = cs_->NewInstance("Person", Person("Twin"));
  auto c2 = cs_->NewInstance("Person", Person("Twin"));
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);
  EXPECT_EQ(cs_->Extent("Person")->size(), 2u);
}

TEST_F(ClassSystemTest, RemoveMaintainsSubsetInvariant) {
  auto e = cs_->NewInstance("Employee", Employee("E", 1, "D"));
  ASSERT_TRUE(e.ok());
  // Removing from Person also removes from Employee (else Employee ⊄
  // Person).
  ASSERT_TRUE(cs_->Remove("Person", *e).ok());
  EXPECT_EQ(cs_->Extent("Person")->size(), 0u);
  EXPECT_EQ(cs_->Extent("Employee")->size(), 0u);
  EXPECT_EQ(cs_->Remove("Person", *e).code(), StatusCode::kNotFound);
}

TEST_F(ClassSystemTest, RemoveFromSubclassKeepsSuperclassMembership) {
  auto e = cs_->NewInstance("Employee", Employee("E", 1, "D"));
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(cs_->Remove("Employee", *e).ok());
  EXPECT_EQ(cs_->Extent("Employee")->size(), 0u);
  EXPECT_EQ(cs_->Extent("Person")->size(), 1u);  // still a person
}

TEST_F(ClassSystemTest, ClassNamesAndTypes) {
  auto names = cs_->ClassNames();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(cs_->HasClass("Person"));
  EXPECT_FALSE(cs_->HasClass("Nope"));
  EXPECT_EQ(cs_->ClassType("Nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cs_->DefineVariableClass("Person", *ParseType("{}")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ClassSystemTest, InstanceHierarchyIsNavigable) {
  // Taxis: EMPLOYEE is an *instance of* VARIABLE_CLASS as well as a
  // subclass of PERSON. The instance chain is object → class object →
  // meta-class object → universal class object.
  auto e = cs_->NewInstance("Employee", Employee("J Doe", 1, "Sales"));
  ASSERT_TRUE(e.ok());
  auto chain = cs_->InstanceChain(*e);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->size(), 4u);
  EXPECT_EQ((*chain)[0], *e);
  // Level 1: the class object.
  Value class_obj = *heap_.Get((*chain)[1]);
  EXPECT_EQ(class_obj.FindField("Name")->AsString(), "Employee");
  EXPECT_EQ(class_obj.FindField("Kind")->AsString(), "VariableClass");
  // Level 2: the meta-class object.
  Value meta_obj = *heap_.Get((*chain)[2]);
  EXPECT_EQ(meta_obj.FindField("Name")->AsString(), "VARIABLE_CLASS");
  // Level 3: the universal class.
  Value universal = *heap_.Get((*chain)[3]);
  EXPECT_EQ(universal.FindField("Name")->AsString(), "CLASS");
  // The class object itself references its meta-class by oid.
  EXPECT_EQ(class_obj.FindField("InstanceOf")->AsRef(), (*chain)[2]);
}

TEST_F(ClassSystemTest, ClassOfInstanceTracksMostSpecific) {
  auto p = cs_->NewInstance("Person", Person("J Doe"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*cs_->ClassOfInstance(*p), "Person");
  ASSERT_TRUE(cs_->Specialize(*p, "Employee",
                              Value::RecordOf({{"Empno", Value::Int(1)},
                                               {"Dept", S("X")}}))
                  .ok());
  EXPECT_EQ(*cs_->ClassOfInstance(*p), "Employee");
  // Objects not created through a class have no instance chain.
  core::Oid raw = heap_.Allocate(Value::Int(3));
  EXPECT_EQ(cs_->ClassOfInstance(raw).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cs_->InstanceChain(raw).status().code(), StatusCode::kNotFound);
}

TEST_F(ClassSystemTest, ClassObjectsLiveInTheHeap) {
  auto oid = cs_->ClassObject("Person");
  ASSERT_TRUE(oid.ok());
  EXPECT_TRUE(heap_.Contains(*oid));
  EXPECT_EQ(cs_->ClassObject("Nope").status().code(), StatusCode::kNotFound);
  // Aggregate classes chain through AGGREGATE_CLASS.
  ASSERT_TRUE(cs_->DefineAggregateClass("Addr", *ParseType("{City: String}"))
                  .ok());
  Value obj = *heap_.Get(*cs_->ClassObject("Addr"));
  EXPECT_EQ(obj.FindField("Kind")->AsString(), "AggregateClass");
}

TEST_F(ClassSystemTest, DiamondHierarchy) {
  // WorkingStudent isa Employee, isa Student.
  ASSERT_TRUE(cs_->DefineVariableClass(
                     "Student", *ParseType("{Name: String, StudentId: Int}"),
                     {"Person"})
                  .ok());
  ASSERT_TRUE(
      cs_->DefineVariableClass(
             "WorkingStudent",
             *ParseType("{Name: String, Empno: Int, Dept: String, "
                        "StudentId: Int}"),
             {"Employee", "Student"})
          .ok());
  Value ws = Value::RecordOf({{"Name", S("W")},
                              {"Empno", Value::Int(1)},
                              {"Dept", S("D")},
                              {"StudentId", Value::Int(2)}});
  auto oid = cs_->NewInstance("WorkingStudent", ws);
  ASSERT_TRUE(oid.ok());
  // Exactly once in every extent up the diamond.
  for (const char* cls : {"WorkingStudent", "Employee", "Student", "Person"}) {
    auto extent = cs_->Extent(cls);
    ASSERT_TRUE(extent.ok()) << cls;
    EXPECT_EQ(extent->size(), 1u) << cls;
  }
}

}  // namespace
}  // namespace dbpl::classes
