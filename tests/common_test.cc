#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/result.h"
#include "common/status.h"

namespace dbpl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::TypeError("coerce failed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(s.message(), "coerce failed");
  EXPECT_EQ(s.ToString(), "TypeError: coerce failed");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Inconsistent("").code(), StatusCode::kInconsistent);
  EXPECT_EQ(Status::TypeError("").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unsupported("").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubled(Result<int> in) {
  DBPL_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::IoError("disk")).status().code(),
            StatusCode::kIoError);
}

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // 32 zero bytes (iSCSI test vector).
  unsigned char zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  unsigned char ffs[32];
  std::memset(ffs, 0xFF, sizeof(ffs));
  EXPECT_EQ(Crc32c(ffs, sizeof(ffs)), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  const char* data = "hello, world";
  uint32_t whole = Crc32c(data, 12);
  uint32_t part = Crc32cExtend(Crc32c(data, 5), data + 5, 7);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteBuffer buf;
  buf.PutU8(0xAB);
  buf.PutU32(0x12345678u);
  buf.PutU64(0xDEADBEEFCAFEBABEull);
  buf.PutDouble(3.14159);
  ByteReader r(buf);
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU32(), 0x12345678u);
  EXPECT_EQ(*r.ReadU64(), 0xDEADBEEFCAFEBABEull);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            std::numeric_limits<uint64_t>::max()};
  ByteBuffer buf;
  for (uint64_t v : cases) buf.PutVarint(v);
  ByteReader r(buf);
  for (uint64_t v : cases) EXPECT_EQ(*r.ReadVarint(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintEncodingIsCompact) {
  ByteBuffer buf;
  buf.PutVarint(5);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  buf.PutVarint(300);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(BytesTest, SignedVarintRoundTrip) {
  const int64_t cases[] = {0,
                           -1,
                           1,
                           -64,
                           64,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  ByteBuffer buf;
  for (int64_t v : cases) buf.PutVarintSigned(v);
  ByteReader r(buf);
  for (int64_t v : cases) EXPECT_EQ(*r.ReadVarintSigned(), v);
}

TEST(BytesTest, SmallNegativesAreCompact) {
  ByteBuffer buf;
  buf.PutVarintSigned(-1);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(BytesTest, StringRoundTrip) {
  ByteBuffer buf;
  buf.PutString("hello");
  buf.PutString("");
  buf.PutString(std::string(1000, 'x'));
  ByteReader r(buf);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_EQ(*r.ReadString(), std::string(1000, 'x'));
}

TEST(BytesTest, TruncatedReadsReportCorruption) {
  ByteBuffer buf;
  buf.PutU8(0x80);  // an unterminated varint
  {
    ByteReader r(buf);
    EXPECT_EQ(r.ReadVarint().status().code(), StatusCode::kCorruption);
  }
  {
    ByteReader r(buf);
    EXPECT_EQ(r.ReadU32().status().code(), StatusCode::kCorruption);
  }
  {
    ByteReader r(buf);
    EXPECT_EQ(r.ReadU64().status().code(), StatusCode::kCorruption);
  }
  buf.clear();
  buf.PutVarint(100);  // string length prefix with no payload
  ByteReader r(buf);
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, OverlongVarintRejected) {
  ByteBuffer buf;
  for (int i = 0; i < 11; ++i) buf.PutU8(0x80);
  buf.PutU8(0x01);
  ByteReader r(buf);
  EXPECT_EQ(r.ReadVarint().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, SkipAndRaw) {
  ByteBuffer buf;
  buf.PutRaw("abcdef", 6);
  ByteReader r(buf);
  EXPECT_TRUE(r.Skip(2).ok());
  char out[4];
  EXPECT_TRUE(r.ReadRaw(out, 4).ok());
  EXPECT_EQ(std::string(out, 4), "cdef");
  EXPECT_EQ(r.Skip(1).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace dbpl
