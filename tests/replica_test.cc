// Tests for persist::Replica — WAL shipping to in-process followers.
// Covers convergence (follower state ≡ primary snapshot, differential
// over every Get strategy), incremental bootstrap vs replay-from-empty,
// checkpoint-rotation handoff, staleness bounds (WaitForEpoch / the
// kDeadlineExceeded read barrier, prefix-consistent lagging reads),
// failover (PromoteToPrimary), and a multi-writer × multi-follower
// stress run that is the tsan target. The crash-interaction matrix
// (followers attached while the primary dies at every VFS op) lives in
// crash_recovery_test.cc.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/value.h"
#include "dyndb/dynamic.h"
#include "persist/replica.h"
#include "persist/wal_database.h"
#include "storage/fault_vfs.h"
#include "test_util.h"
#include "types/parse.h"
#include "types/subtype.h"

namespace dbpl::persist {
namespace {

using core::Value;
using dyndb::Database;
using dyndb::Dynamic;
using storage::FaultVfs;
using types::ParseType;

Value Rec(int seq) {
  return Value::RecordOf(
      {{"Seq", Value::Int(seq)},
       {"Payload", Value::String(std::string(seq % 7, 'r'))}});
}

types::Type RecT() { return *ParseType("{Seq: Int, Payload: String}"); }
types::Type SeqT() { return *ParseType("{Seq: Int}"); }

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/dbpl_replica_" + name + "_" +
                    std::to_string(::getpid());
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/checkpoint.dbpl").c_str());
  return dir;
}

/// Full differential check: the follower must be indistinguishable
/// from the primary under every read path the paper's Get offers.
void ExpectSameState(const Database& primary, const Database& follower) {
  Database::Snapshot p = primary.GetSnapshot();
  Database::Snapshot f = follower.GetSnapshot();
  ASSERT_EQ(p.size(), f.size());
  EXPECT_EQ(p.epoch(), f.epoch());
  for (Database::EntryId id = 0; id < p.size(); ++id) {
    EXPECT_EQ(p.Get(id)->value, f.Get(id)->value) << "entry " << id;
    EXPECT_TRUE(types::TypeEquiv(p.Get(id)->type, f.Get(id)->type));
  }
  // Extent declarations travel too.
  auto p_extents = p.Extents();
  auto f_extents = f.Extents();
  ASSERT_EQ(p_extents.size(), f_extents.size());
  for (size_t i = 0; i < p_extents.size(); ++i) {
    EXPECT_EQ(p_extents[i].first, f_extents[i].first);
    EXPECT_TRUE(types::TypeEquiv(p_extents[i].second, f_extents[i].second));
  }
  // Strategy differential: scan, index, packages, and every extent.
  for (const types::Type& t : {RecT(), SeqT()}) {
    EXPECT_EQ(p.GetScan(t), f.GetScan(t));
    EXPECT_EQ(p.GetViaIndex(t), f.GetViaIndex(t));
    EXPECT_EQ(p.GetPackages(t).size(), f.GetPackages(t).size());
  }
  for (const auto& [name, type] : p_extents) {
    auto pv = p.GetViaExtent(type);
    auto fv = f.GetViaExtent(type);
    ASSERT_TRUE(pv.ok()) << pv.status();
    ASSERT_TRUE(fv.ok()) << fv.status();
    EXPECT_EQ(*pv, *fv) << "extent " << name;
  }
}

// ---------------------------------------------------------------------
// Convergence
// ---------------------------------------------------------------------

TEST(ReplicaTest, FollowerConvergesToPrimary) {
  FaultVfs vfs(1);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE((*wdb)->RegisterExtent("recs", RecT()).ok());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());

  Replica follower;
  // Attach alone catches up to the current durable bounds.
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());
  ExpectSameState((*wdb)->db(), follower.db());
  EXPECT_EQ(follower.Epoch(), (*wdb)->db().epoch());

  // Later writes ship on the next poll.
  for (int i = 8; i < 14; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
  ASSERT_TRUE(follower.Poll().ok());
  ExpectSameState((*wdb)->db(), follower.db());

  ReplicaStats stats = follower.stats();
  EXPECT_EQ(stats.bootstraps, 1u);
  EXPECT_EQ(stats.records_applied, 15u);  // 14 inserts + 1 extent
  EXPECT_EQ(stats.resyncs, 0u);
}

TEST(ReplicaTest, AttachToEmptyPrimaryThenShip) {
  FaultVfs vfs(2);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();

  Replica follower;
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());
  EXPECT_EQ(follower.Epoch(), 0u);
  EXPECT_EQ(follower.db().size(), 0u);

  ASSERT_TRUE((*wdb)->InsertValue(Rec(0)).ok());
  ASSERT_TRUE(follower.Poll().ok());
  ExpectSameState((*wdb)->db(), follower.db());
}

TEST(ReplicaTest, MultipleFollowersConvergeIndependently) {
  FaultVfs vfs(3);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{2, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();

  Replica a, b, c;
  ASSERT_TRUE(a.Attach((*wdb)->shipper()).ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
  ASSERT_TRUE(b.Attach((*wdb)->shipper()).ok());
  for (int i = 6; i < 12; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
  ASSERT_TRUE(c.Attach((*wdb)->shipper()).ok());

  // Followers poll at different times; all land on the same state.
  ASSERT_TRUE(a.Poll().ok());
  ASSERT_TRUE(b.Poll().ok());
  ASSERT_TRUE(c.Poll().ok());
  ExpectSameState((*wdb)->db(), a.db());
  ExpectSameState((*wdb)->db(), b.db());
  ExpectSameState((*wdb)->db(), c.db());
}

// ---------------------------------------------------------------------
// Bootstrap paths
// ---------------------------------------------------------------------

TEST(ReplicaTest, BootstrapFromCheckpointEqualsReplayFromEmpty) {
  FaultVfs vfs(4);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();

  // `streamed` follows from the very first record; `late` bootstraps
  // from the checkpoint + log suffix. The two paths must be
  // indistinguishable in the state they produce.
  Replica streamed;
  ASSERT_TRUE(streamed.Attach((*wdb)->shipper()).ok());

  ASSERT_TRUE((*wdb)->RegisterExtent("recs", RecT()).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
  ASSERT_TRUE(streamed.Poll().ok());  // applied via pure log replay

  ASSERT_TRUE((*wdb)->Checkpoint().ok());
  for (int i = 5; i < 9; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());

  Replica late;
  ASSERT_TRUE(late.Attach((*wdb)->shipper()).ok());
  ASSERT_TRUE(streamed.Poll().ok());

  ExpectSameState((*wdb)->db(), streamed.db());
  ExpectSameState((*wdb)->db(), late.db());
  ExpectSameState(streamed.db(), late.db());

  // And the late one really did come through the checkpoint.
  EXPECT_EQ(late.stats().bootstraps, 1u);
  EXPECT_GT(streamed.stats().bootstraps, 1u);  // re-bootstrap at rotation
}

TEST(ReplicaTest, FollowerSurvivesCheckpointRotation) {
  FaultVfs vfs(5);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();

  Replica follower;
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*wdb)->InsertValue(Rec(round * 4 + i)).ok());
    }
    // The primary truncates its log; the follower must hand off to the
    // checkpoint and keep converging, applying only what it lacks.
    ASSERT_TRUE((*wdb)->Checkpoint().ok());
    ASSERT_TRUE(follower.Poll().ok());
    ExpectSameState((*wdb)->db(), follower.db());
  }
  ReplicaStats stats = follower.stats();
  EXPECT_GE(stats.bootstraps, 3u);
  // Incremental bootstrap: nothing is applied twice, so the applied
  // count is exactly the primary's mutation count.
  EXPECT_EQ(stats.records_applied, (*wdb)->db().epoch());
}

TEST(ReplicaTest, ReattachAfterPrimaryReopenIsIncremental) {
  FaultVfs vfs(6);
  Replica follower;
  {
    auto wdb = WalDatabase::Open(&vfs, "db");
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    for (int i = 0; i < 6; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());
    EXPECT_EQ(follower.Epoch(), 6u);
    follower.Detach();
  }
  // The primary restarts (clean shutdown). The follower re-attaches to
  // the new incarnation and resumes without reapplying its prefix.
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE((*wdb)->InsertValue(Rec(6)).ok());
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());
  ExpectSameState((*wdb)->db(), follower.db());
  EXPECT_EQ(follower.stats().records_skipped, 6u);  // replayed log prefix
  EXPECT_EQ(follower.stats().records_applied, 7u);
}

// ---------------------------------------------------------------------
// Staleness: durable bounds and the read barrier
// ---------------------------------------------------------------------

TEST(ReplicaTest, FollowerNeverObservesUncommittedBatch) {
  FaultVfs vfs(7);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{3, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  Replica follower;
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());

  // Two mutations sit in an open batch — no commit marker, so the
  // shipping bounds must not move and neither must the follower.
  ASSERT_TRUE((*wdb)->InsertValue(Rec(0)).ok());
  ASSERT_TRUE((*wdb)->InsertValue(Rec(1)).ok());
  ASSERT_TRUE(follower.Poll().ok());
  EXPECT_EQ(follower.db().size(), 0u);
  EXPECT_EQ(follower.Epoch(), 0u);

  ASSERT_TRUE((*wdb)->Commit().ok());
  ASSERT_TRUE(follower.Poll().ok());
  EXPECT_EQ(follower.db().size(), 2u);
  ExpectSameState((*wdb)->db(), follower.db());
}

TEST(ReplicaTest, UnsyncedCommitsAreNotShipped) {
  // sync=false: a commit marker lands in the OS but is not durable —
  // a crash could take it back, so a follower that applied it could
  // run *ahead* of a recovered primary. The bounds only advance on
  // real syncs.
  FaultVfs vfs(8);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, false});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  Replica follower;
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());

  ASSERT_TRUE((*wdb)->InsertValue(Rec(0)).ok());  // committed, unsynced
  ASSERT_TRUE(follower.Poll().ok());
  EXPECT_EQ(follower.db().size(), 0u);

  ASSERT_TRUE((*wdb)->Commit().ok());  // forces the sync
  ASSERT_TRUE(follower.Poll().ok());
  ExpectSameState((*wdb)->db(), follower.db());
}

TEST(ReplicaTest, LaggingReadsArePrefixConsistentSnapshots) {
  FaultVfs vfs(9);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{3, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  Replica follower;
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    ASSERT_TRUE(follower.Poll().ok());
    Database::Snapshot snap = follower.db().GetSnapshot();
    // The follower is always at a group-commit boundary: a committed
    // prefix, whole batches only, never a partial one.
    EXPECT_EQ(snap.size() % 3, 0u);
    EXPECT_LE(snap.size(), static_cast<size_t>(i + 1));
    for (Database::EntryId id = 0; id < snap.size(); ++id) {
      EXPECT_EQ(snap.Get(id)->value, Rec(static_cast<int>(id)));
    }
  }
  ASSERT_TRUE((*wdb)->Commit().ok());
  ASSERT_TRUE(follower.Poll().ok());
  ExpectSameState((*wdb)->db(), follower.db());
}

TEST(ReplicaTest, RandomValueStreamsStayPrefixConsistentWhileLagging) {
  // Same prefix-consistency property over the property-test generators:
  // arbitrary nested values, a randomized poll cadence, and a batch
  // size the poll stride is not aligned with.
  for (uint64_t seed : {11u, 23u, 47u}) {
    testing::Rng rng(seed);
    FaultVfs vfs(seed);
    auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{4, true});
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    Replica follower;
    ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());

    std::vector<Value> history;
    for (int i = 0; i < 40; ++i) {
      history.push_back(testing::RandomValue(rng, 2));
      ASSERT_TRUE((*wdb)->InsertValue(history.back()).ok());
      if (rng.Coin()) continue;  // let the follower fall behind
      ASSERT_TRUE(follower.Poll().ok());
      Database::Snapshot snap = follower.db().GetSnapshot();
      ASSERT_EQ(snap.size() % 4, 0u) << "seed " << seed << " step " << i;
      ASSERT_LE(snap.size(), history.size());
      for (Database::EntryId id = 0; id < snap.size(); ++id) {
        ASSERT_EQ(snap.Get(id)->value, history[id])
            << "seed " << seed << " entry " << id;
      }
    }
    ASSERT_TRUE((*wdb)->Commit().ok());
    ASSERT_TRUE(follower.Poll().ok());
    ExpectSameState((*wdb)->db(), follower.db());
  }
}

TEST(ReplicaTest, WaitForEpochManualModeDrivesPolls) {
  FaultVfs vfs(10);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  Replica follower;
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());

  for (int i = 0; i < 4; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
  // Manual mode: the barrier itself runs the shipping rounds.
  ASSERT_TRUE(
      follower.WaitForEpoch(4, std::chrono::milliseconds(1000)).ok());
  EXPECT_GE(follower.Epoch(), 4u);

  // An epoch the primary never reaches must time out, not hang.
  Status late = follower.WaitForEpoch(100, std::chrono::milliseconds(30));
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);

  // An epoch already reached returns immediately even when detached.
  follower.Detach();
  EXPECT_TRUE(follower.WaitForEpoch(4, std::chrono::milliseconds(1)).ok());
  EXPECT_EQ(
      follower.WaitForEpoch(100, std::chrono::milliseconds(1)).code(),
      StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------

TEST(ReplicaTest, PromoteThenWriteIsDurable) {
  FaultVfs vfs(11);
  auto wdb = WalDatabase::Open(&vfs, "primary");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE((*wdb)->RegisterExtent("recs", RecT()).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());

  Replica follower;
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());
  wdb->reset();  // the old primary is gone

  auto promoted = follower.PromoteToPrimary(&vfs, "standby");
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_FALSE(follower.attached());
  ExpectSameState(follower.db(), (*promoted)->db());

  // Writes to the new primary are WAL-durable from the first insert:
  // survive a hard power loss and reopen.
  for (int i = 5; i < 9; ++i) {
    ASSERT_TRUE((*promoted)->InsertValue(Rec(i)).ok());
  }
  promoted->reset();
  vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);

  auto reopened = WalDatabase::Open(&vfs, "standby");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const Database& db = (*reopened)->db();
  ASSERT_EQ(db.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(db.Get(i)->value, Rec(i));
  auto via_extent = db.GetViaExtent(RecT());
  ASSERT_TRUE(via_extent.ok()) << via_extent.status();
  EXPECT_EQ(via_extent->size(), 9u);
}

// ---------------------------------------------------------------------
// Streaming followers (background thread; PosixVfs — FaultVfs is not
// thread-safe). These are the tsan targets.
// ---------------------------------------------------------------------

TEST(ReplicaTest, StreamingFollowerWaitForEpochBarrier) {
  storage::PosixVfs vfs;
  const std::string dir = FreshDir("stream");
  auto wdb = WalDatabase::Open(&vfs, dir, CommitPolicy{2, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();

  Replica follower;
  ASSERT_TRUE(follower.Attach((*wdb)->shipper(),
                              {std::chrono::milliseconds(1)})
                  .ok());

  constexpr int kWrites = 40;
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    }
    ASSERT_TRUE((*wdb)->Commit().ok());
  });
  writer.join();

  const uint64_t target = (*wdb)->db().epoch();
  ASSERT_TRUE(follower.WaitForEpoch(target, std::chrono::seconds(20)).ok());
  follower.Detach();
  ExpectSameState((*wdb)->db(), follower.db());

  // The barrier times out cleanly on an epoch nobody will publish.
  Replica idle;
  ASSERT_TRUE(idle.Attach((*wdb)->shipper(),
                          {std::chrono::milliseconds(1)})
                  .ok());
  EXPECT_EQ(idle.WaitForEpoch(target + 100, std::chrono::milliseconds(50))
                .code(),
            StatusCode::kDeadlineExceeded);
}

TEST(ReplicaTest, StressWritersCheckpointsAndFollowers) {
  // 4 writer threads + periodic checkpoints on the primary, 3
  // streaming followers tailing through the rotations. Everything
  // must converge exactly; under -DDBPL_TSAN this doubles as the
  // data-race proof for the whole shipping path.
  storage::PosixVfs vfs;
  const std::string dir = FreshDir("stress");
  auto wdb = WalDatabase::Open(&vfs, dir, CommitPolicy{4, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE((*wdb)->RegisterExtent("recs", RecT()).ok());

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 30;
  constexpr int kFollowers = 3;

  std::vector<Replica> followers(kFollowers);
  for (Replica& f : followers) {
    ASSERT_TRUE(
        f.Attach((*wdb)->shipper(), {std::chrono::milliseconds(1)}).ok());
  }

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        ASSERT_TRUE((*wdb)->InsertValue(Rec(t * kPerWriter + i)).ok());
        if (t == 0 && i % 10 == 9) {
          // Rotations race the followers' reads; the generation
          // re-check must keep every one of them consistent.
          ASSERT_TRUE((*wdb)->Checkpoint().ok());
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  ASSERT_TRUE((*wdb)->Commit().ok());

  const uint64_t target = (*wdb)->db().epoch();
  for (Replica& f : followers) {
    ASSERT_TRUE(f.WaitForEpoch(target, std::chrono::seconds(60)).ok());
    f.Detach();
  }
  for (Replica& f : followers) {
    ExpectSameState((*wdb)->db(), f.db());
  }
  // Every inserted value arrived exactly once on every follower.
  std::vector<int> seen(kWriters * kPerWriter, 0);
  for (const Dynamic& d : followers[0].db().entries()) {
    const Value* seq = d.value.FindField("Seq");
    ASSERT_NE(seq, nullptr);
    ++seen[static_cast<size_t>(seq->AsInt())];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

// ---------------------------------------------------------------------
// Regressions
// ---------------------------------------------------------------------

TEST(ReplicaTest, WaitForEpochManualModeHonorsTheDeadline) {
  FaultVfs vfs(20);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
  Replica follower;
  ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());

  // An epoch the primary never reaches: the barrier must come back
  // close to the deadline — not quantum-walk past it on fixed sleeps —
  // while still driving shipping rounds in the meantime.
  const uint64_t polls_before = follower.stats().polls;
  const auto t0 = std::chrono::steady_clock::now();
  Status late = follower.WaitForEpoch(1000, std::chrono::milliseconds(60));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed.count(), 60);
  EXPECT_LT(elapsed.count(), 2000);  // generous scheduler slack, not a hang
  EXPECT_GT(follower.stats().polls, polls_before);

  // Zero timeout with the epoch already reached returns OK at once.
  EXPECT_TRUE(
      follower.WaitForEpoch(follower.Epoch(), std::chrono::milliseconds(0))
          .ok());
}

/// A shipper that lies: real segments, but per-shard durable bounds
/// inflated past what the segments can deliver — the observable shape
/// of a reader caching stale shipping state (e.g. across a failed
/// checkpoint rotation on a different transport).
class StaleBoundsShipper : public WalShipper {
 public:
  explicit StaleBoundsShipper(WalShipper* real) : real_(real) {}
  void set_extra_bytes(uint64_t n) { extra_ = n; }

  ShipState ship_bounds() const override {
    ShipState state = real_->ship_bounds();
    for (Bounds& b : state.shards) b.durable_bytes += extra_;
    return state;
  }
  int shard_count() const override { return real_->shard_count(); }
  storage::Vfs* vfs() const override { return real_->vfs(); }
  const std::string& wal_path(int shard) const override {
    return real_->wal_path(shard);
  }
  const std::string& checkpoint_path() const override {
    return real_->checkpoint_path();
  }

 private:
  WalShipper* real_;
  uint64_t extra_ = 0;
};

TEST(ReplicaTest, PersistentlyStaleBoundsSurfaceOnceThenRetryQuietly) {
  FaultVfs vfs(21);
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
  StaleBoundsShipper shipper((*wdb)->shipper());
  Replica follower;
  ASSERT_TRUE(follower.Attach(&shipper).ok());
  ASSERT_EQ(follower.db().size(), 4u);

  // The shipper starts advertising bytes its segment cannot deliver,
  // at an unchanged generation.
  shipper.set_extra_bytes(64);
  // First anomalous round: forgivable, a silent resync.
  EXPECT_TRUE(follower.Poll().ok());
  EXPECT_EQ(follower.stats().resyncs, 1u);
  // The second round re-bootstrapped and STILL cannot reach the
  // bounds: the anomaly is persistent — surfaced exactly once.
  Status stale = follower.Poll();
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);
  // Later rounds retry quietly (no error spam)...
  EXPECT_TRUE(follower.Poll().ok());
  EXPECT_TRUE(follower.Poll().ok());
  // ...and the follower never regressed or applied a torn read.
  EXPECT_EQ(follower.db().size(), 4u);

  // The shipper recovers: the next round converges and the stale
  // tracking resets.
  shipper.set_extra_bytes(0);
  ASSERT_TRUE((*wdb)->InsertValue(Rec(4)).ok());
  EXPECT_TRUE(follower.Poll().ok());
  ExpectSameState((*wdb)->db(), follower.db());
  // A relapse is reported afresh (proof the reset really happened).
  shipper.set_extra_bytes(64);
  EXPECT_TRUE(follower.Poll().ok());
  EXPECT_EQ(follower.Poll().code(), StatusCode::kFailedPrecondition);
}

TEST(ReplicaTest, FollowerSurvivesAFailedCheckpointRotation) {
  // Fail the primary's checkpoint at every possible crash point. The
  // generation is bumped before the rotation precisely so a follower
  // can never mistake stale segments for live ones: whatever step the
  // failure hit, every follower round stays quiet, the state never
  // regresses, and replication converges once the primary heals.
  bool saw_failure = false;
  for (uint64_t k = 1; k < 40; ++k) {
    FaultVfs vfs(22);
    auto wdb = WalDatabase::Open(&vfs, "db");
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wdb)->InsertValue(Rec(i)).ok());
    }
    Replica follower;
    ASSERT_TRUE(follower.Attach((*wdb)->shipper()).ok());

    vfs.CrashAtMutatingOp(k);
    Status ck = (*wdb)->Checkpoint();
    vfs.ClearCrash();
    if (ck.ok()) break;  // k beyond the checkpoint's op count: done
    saw_failure = true;

    for (int r = 0; r < 3; ++r) {
      Status polled = follower.Poll();
      EXPECT_TRUE(polled.ok()) << "k=" << k << ": " << polled;
    }
    EXPECT_EQ(follower.db().size(), 5u) << "k=" << k;

    // The primary heals (a later checkpoint un-poisons the WAL) and
    // replication resumes to convergence.
    Status heal = (*wdb)->Checkpoint();
    ASSERT_TRUE(heal.ok()) << "k=" << k << ": " << heal;
    ASSERT_TRUE((*wdb)->InsertValue(Rec(99)).ok());
    ASSERT_TRUE((*wdb)->Commit().ok());
    ASSERT_TRUE(follower.Poll().ok());
    ExpectSameState((*wdb)->db(), follower.db());
  }
  EXPECT_TRUE(saw_failure);
}

}  // namespace
}  // namespace dbpl::persist
