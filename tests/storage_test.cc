#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/fault_vfs.h"
#include "storage/kv_store.h"
#include "storage/log.h"
#include "storage/pager.h"

namespace dbpl::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/dbpl_storage_" + name + "_" +
         std::to_string(::getpid());
}

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
  }
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Flips one byte at `offset` in the file.
void CorruptByte(const std::string& path, off_t offset) {
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  unsigned char b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, offset), 1);
  b ^= 0xFF;
  ASSERT_EQ(::pwrite(fd, &b, 1, offset), 1);
  ::close(fd);
}

/// Truncates the file to `len` bytes (simulating a crash mid-append).
void TruncateTo(const std::string& path, off_t len) {
  ASSERT_EQ(::truncate(path.c_str(), len), 0);
}

off_t FileSize(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  off_t size = ::lseek(fd, 0, SEEK_END);
  ::close(fd);
  return size;
}

// ---------------------------------------------------------------------
// Pager
// ---------------------------------------------------------------------

TEST(PagerTest, AllocateWriteReadRoundTrip) {
  ScopedFile file(TempPath("pager1"));
  auto pager = Pager::Open(file.path());
  ASSERT_TRUE(pager.ok()) << pager.status();
  auto page = (*pager)->Allocate();
  ASSERT_TRUE(page.ok());
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE((*pager)->Write(*page, payload).ok());
  auto read = (*pager)->Read(*page);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  EXPECT_EQ((*pager)->page_count(), 1u);
}

TEST(PagerTest, FreshPageReadsEmpty) {
  ScopedFile file(TempPath("pager2"));
  auto pager = Pager::Open(file.path());
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Allocate();
  ASSERT_TRUE(page.ok());
  auto read = (*pager)->Read(*page);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(PagerTest, PersistsAcrossReopen) {
  ScopedFile file(TempPath("pager3"));
  {
    auto pager = Pager::Open(file.path());
    ASSERT_TRUE(pager.ok());
    auto page = (*pager)->Allocate();
    ASSERT_TRUE((*pager)->Write(*page, {9, 9, 9}).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  auto pager = Pager::Open(file.path());
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 1u);
  auto read = (*pager)->Read(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (std::vector<uint8_t>{9, 9, 9}));
}

TEST(PagerTest, DetectsCorruptedPage) {
  ScopedFile file(TempPath("pager4"));
  {
    auto pager = Pager::Open(file.path());
    ASSERT_TRUE(pager.ok());
    auto page = (*pager)->Allocate();
    ASSERT_TRUE((*pager)->Write(*page, {1, 2, 3}).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  CorruptByte(file.path(), 10);  // inside the payload
  auto pager = Pager::Open(file.path());
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->Read(0).status().code(), StatusCode::kCorruption);
}

TEST(PagerTest, RejectsOutOfRangeAndOversize) {
  ScopedFile file(TempPath("pager5"));
  auto pager = Pager::Open(file.path());
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->Read(0).status().code(), StatusCode::kInvalidArgument);
  auto page = (*pager)->Allocate();
  std::vector<uint8_t> too_big((*pager)->payload_size() + 1, 0);
  EXPECT_EQ((*pager)->Write(*page, too_big).code(),
            StatusCode::kInvalidArgument);
}

TEST(PagerTest, RejectsBadGeometry) {
  EXPECT_FALSE(Pager::Open(TempPath("pager6"), 100).ok());  // not 8-aligned
  EXPECT_FALSE(Pager::Open(TempPath("pager7"), 32).ok());   // too small
}

// ---------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------

TEST(BufferPoolTest, CachesReads) {
  ScopedFile file(TempPath("pool1"));
  auto pager = Pager::Open(file.path());
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Allocate();
  ASSERT_TRUE((*pager)->Write(*page, {7}).ok());
  BufferPool pool(pager->get(), 4);
  ASSERT_TRUE(pool.Get(*page).ok());
  ASSERT_TRUE(pool.Get(*page).ok());
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, WriteBackOnFlush) {
  ScopedFile file(TempPath("pool2"));
  auto pager = Pager::Open(file.path());
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Allocate();
  BufferPool pool(pager->get(), 4);
  ASSERT_TRUE(pool.Put(*page, {42}).ok());
  // Not yet on disk.
  auto direct = (*pager)->Read(*page);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->empty());
  ASSERT_TRUE(pool.Flush().ok());
  direct = (*pager)->Read(*page);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*direct, (std::vector<uint8_t>{42}));
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  ScopedFile file(TempPath("pool3"));
  auto pager = Pager::Open(file.path());
  ASSERT_TRUE(pager.ok());
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) pages.push_back(*(*pager)->Allocate());
  BufferPool pool(pager->get(), 2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.Put(pages[i], {static_cast<uint8_t>(i)}).ok());
  }
  EXPECT_EQ(pool.cached_pages(), 2u);
  EXPECT_GE(pool.stats().evictions, 2u);
  // Evicted dirty pages reached the disk.
  auto read = (*pager)->Read(pages[0]);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (std::vector<uint8_t>{0}));
}

TEST(BufferPoolTest, LruKeepsHotPages) {
  ScopedFile file(TempPath("pool4"));
  auto pager = Pager::Open(file.path());
  ASSERT_TRUE(pager.ok());
  std::vector<PageId> pages;
  for (int i = 0; i < 3; ++i) {
    auto p = (*pager)->Allocate();
    ASSERT_TRUE((*pager)->Write(*p, {static_cast<uint8_t>(i)}).ok());
    pages.push_back(*p);
  }
  BufferPool pool(pager->get(), 2);
  ASSERT_TRUE(pool.Get(pages[0]).ok());  // miss
  ASSERT_TRUE(pool.Get(pages[1]).ok());  // miss
  ASSERT_TRUE(pool.Get(pages[0]).ok());  // hit, 0 hot
  ASSERT_TRUE(pool.Get(pages[2]).ok());  // miss, evicts 1
  ASSERT_TRUE(pool.Get(pages[0]).ok());  // still cached
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().misses, 3u);
}

// ---------------------------------------------------------------------
// Log
// ---------------------------------------------------------------------

TEST(LogTest, AppendAndReadBack) {
  ScopedFile file(TempPath("log1"));
  {
    auto writer = LogWriter::Open(file.path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "k1", "v1"}).ok());
    ASSERT_TRUE((*writer)->Append({LogRecordType::kDelete, "k2", ""}).ok());
    ASSERT_TRUE((*writer)->Append({LogRecordType::kCommit, "", ""}).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto reader = LogReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  LogRecord r;
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_EQ(r, (LogRecord{LogRecordType::kPut, "k1", "v1"}));
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_EQ(r, (LogRecord{LogRecordType::kDelete, "k2", ""}));
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_EQ(r.type, LogRecordType::kCommit);
  EXPECT_FALSE(*(*reader)->Next(&r));
  EXPECT_FALSE((*reader)->saw_corrupt_tail());
}

TEST(LogTest, TornTailDetected) {
  ScopedFile file(TempPath("log2"));
  {
    auto writer = LogWriter::Open(file.path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "k1", "v1"}).ok());
    ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "k2", "v2"}).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  TruncateTo(file.path(), FileSize(file.path()) - 3);
  auto reader = LogReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  LogRecord r;
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_EQ(r.key, "k1");
  EXPECT_FALSE(*(*reader)->Next(&r));
  EXPECT_TRUE((*reader)->saw_corrupt_tail());
}

TEST(LogTest, BitFlipDetected) {
  ScopedFile file(TempPath("log3"));
  {
    auto writer = LogWriter::Open(file.path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "key", "value"}).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  CorruptByte(file.path(), 12);  // inside the body
  auto reader = LogReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  LogRecord r;
  EXPECT_FALSE(*(*reader)->Next(&r));
  EXPECT_TRUE((*reader)->saw_corrupt_tail());
}

TEST(LogTest, AppendsAcrossReopen) {
  ScopedFile file(TempPath("log4"));
  for (int i = 0; i < 3; ++i) {
    auto writer = LogWriter::Open(file.path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        (*writer)->Append({LogRecordType::kPut, "k" + std::to_string(i), "v"})
            .ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto reader = LogReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  int count = 0;
  LogRecord r;
  while (*(*reader)->Next(&r)) ++count;
  EXPECT_EQ(count, 3);
}

TEST(LogTest, OversizedRecordRejectedBeforeAnyBytesReachTheFile) {
  ScopedFile file(TempPath("log_oversize"));
  auto writer = LogWriter::Open(file.path());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "k1", "v1"}).ok());
  const uint64_t bytes_before = (*writer)->bytes_written();

  // A record whose body exceeds the reader's sanity bound must never be
  // written: the reader would treat its length field as a corrupt tail,
  // silently hiding the record and everything appended after it.
  LogRecord oversized{LogRecordType::kPut, "k",
                      std::string(kMaxLogRecordBody, 'x')};
  Status rejected = (*writer)->Append(oversized);
  oversized.value.clear();
  oversized.value.shrink_to_fit();
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*writer)->bytes_written(), bytes_before);
  // A caller error, not I/O damage: the log has no torn frame and the
  // writer stays usable.
  EXPECT_FALSE((*writer)->poisoned());

  // Write/read symmetry: everything the writer accepted, the reader
  // returns, with a clean (not corrupt) end of log.
  ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "k2", "v2"}).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  auto reader = LogReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  LogRecord r;
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_EQ(r, (LogRecord{LogRecordType::kPut, "k1", "v1"}));
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_EQ(r, (LogRecord{LogRecordType::kPut, "k2", "v2"}));
  EXPECT_FALSE(*(*reader)->Next(&r));
  EXPECT_FALSE((*reader)->saw_corrupt_tail());
}

TEST(LogTest, WriterPoisonedAfterTornAppend) {
  FaultVfs vfs(0x9015);
  const std::string path = "poison.log";
  auto writer = LogWriter::Open(&vfs, path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "a", "1"}).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  const uint64_t synced_size = (*vfs.GetFileBytes(path)).size();

  vfs.CrashAtMutatingOp(1);
  Status torn = (*writer)->Append({LogRecordType::kPut, "b", "2"});
  EXPECT_EQ(torn.code(), StatusCode::kIoError);
  EXPECT_TRUE((*writer)->poisoned());
  vfs.ClearCrash();  // I/O works again, but the torn frame remains

  // The poisoned writer must not strand records behind the torn frame
  // where recovery can never see them: append and sync fail fast.
  EXPECT_EQ((*writer)->Append({LogRecordType::kPut, "c", "3"}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*writer)->Sync().code(), StatusCode::kFailedPrecondition);

  // The failing write applied an RNG-chosen prefix of its bytes (which
  // may be none, some, or all of the frame). Whatever happened, the
  // reader must recover a clean prefix of the appended records: "a"
  // always, "b" only if its frame landed in full, and a corrupt tail
  // reported exactly when partial frame bytes are left behind.
  const uint64_t size_after = (*vfs.GetFileBytes(path)).size();
  auto reader = LogReader::Open(&vfs, path);
  ASSERT_TRUE(reader.ok());
  std::vector<LogRecord> recovered;
  LogRecord r;
  while (*(*reader)->Next(&r)) recovered.push_back(r);
  ASSERT_GE(recovered.size(), 1u);
  ASSERT_LE(recovered.size(), 2u);
  EXPECT_EQ(recovered[0], (LogRecord{LogRecordType::kPut, "a", "1"}));
  if (recovered.size() == 2) {
    EXPECT_EQ(recovered[1], (LogRecord{LogRecordType::kPut, "b", "2"}));
    EXPECT_FALSE((*reader)->saw_corrupt_tail());
  } else {
    EXPECT_EQ((*reader)->saw_corrupt_tail(), size_after > synced_size);
  }
}

// Tail-following cursor (persist::Replica's access pattern): a reader
// that drained the log can Resume() after more appends, OpenAt()
// restarts a cursor at a frame boundary, and a cursor pointed at a
// rotated (truncated) log fails cleanly instead of yielding frames.

TEST(LogTest, ResumeTailFollowsAfterCleanEnd) {
  FaultVfs vfs(0x7A11);
  const std::string path = "tail.log";
  auto writer = LogWriter::Open(&vfs, path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "a", "1"}).ok());
  ASSERT_TRUE((*writer)->Sync().ok());

  auto reader = LogReader::Open(&vfs, path);
  ASSERT_TRUE(reader.ok());
  LogRecord r;
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_FALSE(*(*reader)->Next(&r));  // clean end: done
  EXPECT_FALSE((*reader)->saw_corrupt_tail());
  const uint64_t boundary = (*reader)->offset();
  EXPECT_EQ(boundary, (*writer)->bytes_written());

  // The log grows; the same cursor resumes from where it stopped.
  ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "b", "2"}).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_FALSE(*(*reader)->Next(&r));  // still latched done...
  (*reader)->Resume();                 // ...until told to look again
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_EQ(r, (LogRecord{LogRecordType::kPut, "b", "2"}));
  EXPECT_EQ((*reader)->offset(), (*writer)->bytes_written());
}

TEST(LogTest, OpenAtRestartsCursorAtFrameBoundary) {
  FaultVfs vfs(0x7A12);
  const std::string path = "openat.log";
  auto writer = LogWriter::Open(&vfs, path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "a", "1"}).ok());
  const uint64_t after_first = (*writer)->bytes_written();
  ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "b", "2"}).ok());
  ASSERT_TRUE((*writer)->Append({LogRecordType::kCommit, "", ""}).ok());
  ASSERT_TRUE((*writer)->Sync().ok());

  // A fresh cursor at a recorded boundary sees exactly the suffix.
  auto reader = LogReader::OpenAt(&vfs, path, after_first);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->offset(), after_first);
  LogRecord r;
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_EQ(r, (LogRecord{LogRecordType::kPut, "b", "2"}));
  ASSERT_TRUE(*(*reader)->Next(&r));
  EXPECT_EQ(r.type, LogRecordType::kCommit);
  EXPECT_FALSE(*(*reader)->Next(&r));
  EXPECT_FALSE((*reader)->saw_corrupt_tail());
}

TEST(LogTest, StaleCursorAtRotationBoundaryFailsCleanly) {
  FaultVfs vfs(0x7A13);
  const std::string path = "rotate.log";
  {
    auto writer = LogWriter::Open(&vfs, path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*writer)->Append({LogRecordType::kPut, "k", "vvvvvvvv"}).ok());
    }
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto reader = LogReader::Open(&vfs, path);
  ASSERT_TRUE(reader.ok());
  LogRecord r;
  ASSERT_TRUE(*(*reader)->Next(&r));
  ASSERT_TRUE(*(*reader)->Next(&r));
  const uint64_t stale = (*reader)->offset();

  // The log rotates: truncate-and-rewrite, shorter than the cursor.
  {
    auto truncated = vfs.Open(path, OpenMode::kTruncate);
    ASSERT_TRUE(truncated.ok());
  }
  {
    auto writer = LogWriter::Open(&vfs, path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "n", "1"}).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
    ASSERT_LT((*writer)->bytes_written(), stale);
  }
  // The stale cursor points past the rotated log's end: it must report
  // end-of-log (a clean or torn tail), never a decoded frame.
  (*reader)->Resume();
  EXPECT_FALSE(*(*reader)->Next(&r));

  // And a restarted cursor reads the new generation normally.
  auto fresh = LogReader::OpenAt(&vfs, path, 0);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(*(*fresh)->Next(&r));
  EXPECT_EQ(r, (LogRecord{LogRecordType::kPut, "n", "1"}));
}

TEST(LogTest, CursorPastPoisonedWriterTailStopsAtLastGoodFrame) {
  // A torn append leaves a partial frame mid-file; a tailing cursor
  // must stop *at the last good frame boundary* so a later OpenAt at
  // its offset() re-reads nothing and skips nothing.
  FaultVfs vfs(0x7A14);
  const std::string path = "torntail.log";
  auto writer = LogWriter::Open(&vfs, path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append({LogRecordType::kPut, "a", "1"}).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  const uint64_t good = (*writer)->bytes_written();

  vfs.CrashAtMutatingOp(1);
  EXPECT_FALSE((*writer)->Append({LogRecordType::kPut, "b", "2"}).ok());
  EXPECT_TRUE((*writer)->poisoned());
  vfs.ClearCrash();

  auto reader = LogReader::Open(&vfs, path);
  ASSERT_TRUE(reader.ok());
  LogRecord r;
  ASSERT_TRUE(*(*reader)->Next(&r));
  const bool more = *(*reader)->Next(&r);
  if (!more && (*reader)->saw_corrupt_tail()) {
    // Partial frame bytes landed: the cursor must sit on the last
    // good boundary, not somewhere inside the torn frame.
    EXPECT_EQ((*reader)->offset(), good);
  }
}

// ---------------------------------------------------------------------
// KvStore
// ---------------------------------------------------------------------

TEST(KvStoreTest, PutGetDelete) {
  ScopedFile file(TempPath("kv1"));
  auto store = KvStore::Open(file.path());
  ASSERT_TRUE(store.ok()) << store.status();
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  ASSERT_TRUE((*store)->Apply(batch).ok());
  EXPECT_EQ(*(*store)->Get("a"), "1");
  EXPECT_EQ(*(*store)->Get("b"), "2");
  WriteBatch batch2;
  batch2.Delete("a");
  batch2.Put("b", "22");
  ASSERT_TRUE((*store)->Apply(batch2).ok());
  EXPECT_EQ((*store)->Get("a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*(*store)->Get("b"), "22");
  EXPECT_EQ((*store)->size(), 1u);
}

TEST(KvStoreTest, SurvivesReopen) {
  ScopedFile file(TempPath("kv2"));
  {
    auto store = KvStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    WriteBatch batch;
    batch.Put("persistent", "yes");
    ASSERT_TRUE((*store)->Apply(batch).ok());
  }
  auto store = KvStore::Open(file.path());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->Get("persistent"), "yes");
  EXPECT_EQ((*store)->recovery_info().batches_committed, 1u);
}

TEST(KvStoreTest, UncommittedTailDroppedAtRecovery) {
  ScopedFile file(TempPath("kv3"));
  {
    auto store = KvStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    WriteBatch batch;
    batch.Put("committed", "1");
    ASSERT_TRUE((*store)->Apply(batch).ok());
  }
  // Simulate a crash mid-batch: append puts with no commit marker.
  {
    auto writer = LogWriter::Open(file.path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        (*writer)->Append({LogRecordType::kPut, "uncommitted", "x"}).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto store = KvStore::Open(file.path());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Contains("committed"));
  EXPECT_FALSE((*store)->Contains("uncommitted"));
  EXPECT_EQ((*store)->recovery_info().uncommitted_dropped, 1u);
}

TEST(KvStoreTest, TornFinalRecordRecovers) {
  ScopedFile file(TempPath("kv4"));
  {
    auto store = KvStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    WriteBatch b1;
    b1.Put("a", "1");
    ASSERT_TRUE((*store)->Apply(b1).ok());
    WriteBatch b2;
    b2.Put("b", "2");
    ASSERT_TRUE((*store)->Apply(b2).ok());
  }
  // Tear the last few bytes (the second batch's commit marker).
  TruncateTo(file.path(), FileSize(file.path()) - 2);
  auto store = KvStore::Open(file.path());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Contains("a"));
  EXPECT_FALSE((*store)->Contains("b"));
  EXPECT_TRUE((*store)->recovery_info().corrupt_tail);
}

TEST(KvStoreTest, BatchIsAtomicAtRecovery) {
  ScopedFile file(TempPath("kv5"));
  {
    auto store = KvStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    WriteBatch batch;
    batch.Put("x", "1");
    batch.Put("y", "2");
    batch.Put("z", "3");
    ASSERT_TRUE((*store)->Apply(batch).ok());
  }
  // Cut in the middle of the batch: none of it may survive.
  TruncateTo(file.path(), FileSize(file.path()) / 2);
  auto store = KvStore::Open(file.path());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->Contains("x"));
  EXPECT_FALSE((*store)->Contains("y"));
  EXPECT_FALSE((*store)->Contains("z"));
  EXPECT_EQ((*store)->size(), 0u);
}

TEST(KvStoreTest, CompactPreservesStateAndShrinksLog) {
  ScopedFile file(TempPath("kv6"));
  auto store = KvStore::Open(file.path());
  ASSERT_TRUE(store.ok());
  // Overwrite the same keys many times.
  for (int i = 0; i < 50; ++i) {
    WriteBatch batch;
    batch.Put("hot", std::to_string(i));
    batch.Put("warm", std::to_string(i * 2));
    ASSERT_TRUE((*store)->Apply(batch).ok());
  }
  off_t before = FileSize(file.path());
  ASSERT_TRUE((*store)->Compact().ok());
  off_t after = FileSize(file.path());
  EXPECT_LT(after, before / 4);
  EXPECT_EQ(*(*store)->Get("hot"), "49");
  EXPECT_EQ(*(*store)->Get("warm"), "98");
  // And the compacted log still replays.
  store->reset();
  auto reopened = KvStore::Open(file.path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("hot"), "49");
}

TEST(KvStoreTest, KeysWithPrefix) {
  ScopedFile file(TempPath("kv7"));
  auto store = KvStore::Open(file.path());
  ASSERT_TRUE(store.ok());
  WriteBatch batch;
  batch.Put("o/1", "a");
  batch.Put("o/2", "b");
  batch.Put("r/main", "c");
  ASSERT_TRUE((*store)->Apply(batch).ok());
  EXPECT_EQ((*store)->KeysWithPrefix("o/"),
            (std::vector<std::string>{"o/1", "o/2"}));
  EXPECT_EQ((*store)->KeysWithPrefix("r/"),
            (std::vector<std::string>{"r/main"}));
  EXPECT_TRUE((*store)->KeysWithPrefix("zz").empty());
}

TEST(KvStoreTest, EmptyBatchIsNoOp) {
  ScopedFile file(TempPath("kv8"));
  auto store = KvStore::Open(file.path());
  ASSERT_TRUE(store.ok());
  WriteBatch batch;
  ASSERT_TRUE((*store)->Apply(batch).ok());
  EXPECT_EQ((*store)->size(), 0u);
}

}  // namespace
}  // namespace dbpl::storage
