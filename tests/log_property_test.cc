// Property-based round-trip tests for the write-ahead log format.
//
// Seeded generators produce random record sequences; the log is then
// damaged in every way a crash can damage it — truncation at every
// byte offset, a bit flip at every byte — and recovery must never
// return a record that was not written, never return a corrupted
// record, and never (at the KvStore level) surface an uncommitted
// batch. Everything runs on the in-memory FaultVfs: no disk I/O.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "storage/fault_vfs.h"
#include "storage/kv_store.h"
#include "storage/log.h"
#include "test_util.h"

namespace dbpl {
namespace {

using dbpl::testing::Rng;
using storage::FaultVfs;
using storage::KvStore;
using storage::LogReader;
using storage::LogRecord;
using storage::LogRecordType;
using storage::LogWriter;
using storage::WriteBatch;

/// A random record: keys and values may be empty and may hold
/// arbitrary bytes (including NUL and 0xFF).
LogRecord RandomLogRecord(Rng& rng) {
  LogRecord rec;
  switch (rng.Below(4)) {
    case 0:
      rec.type = LogRecordType::kDelete;
      break;
    case 1:
      rec.type = LogRecordType::kCommit;
      break;
    default:
      rec.type = LogRecordType::kPut;
      break;
  }
  size_t key_len = rng.Below(9);
  for (size_t i = 0; i < key_len; ++i) {
    rec.key.push_back(static_cast<char>(rng.Below(256)));
  }
  if (rec.type == LogRecordType::kPut) {
    size_t value_len = rng.Below(24);
    for (size_t i = 0; i < value_len; ++i) {
      rec.value.push_back(static_cast<char>(rng.Below(256)));
    }
  }
  return rec;
}

/// Writes `records` into a fresh log at `path`, returning the byte
/// offset of each record's frame end (so `ends[i]` bytes hold exactly
/// records 0..i).
std::vector<uint64_t> WriteLog(FaultVfs* vfs, const std::string& path,
                               const std::vector<LogRecord>& records) {
  std::vector<uint64_t> ends;
  auto writer = LogWriter::Open(vfs, path);
  EXPECT_TRUE(writer.ok());
  for (const LogRecord& rec : records) {
    EXPECT_TRUE((*writer)->Append(rec).ok());
    ends.push_back((*writer)->bytes_written());
  }
  EXPECT_TRUE((*writer)->Sync().ok());
  return ends;
}

std::vector<LogRecord> ReadAll(FaultVfs* vfs, const std::string& path,
                               bool* corrupt_tail) {
  std::vector<LogRecord> out;
  auto reader = LogReader::Open(vfs, path);
  EXPECT_TRUE(reader.ok());
  LogRecord rec;
  while (true) {
    auto has = (*reader)->Next(&rec);
    EXPECT_TRUE(has.ok()) << has.status();
    if (!has.ok() || !*has) break;
    out.push_back(rec);
    EXPECT_LT(out.size(), 10000u);  // must terminate
  }
  if (corrupt_tail != nullptr) *corrupt_tail = (*reader)->saw_corrupt_tail();
  return out;
}

TEST(LogPropertyTest, TruncationAtEveryByteOffsetYieldsExactPrefix) {
  Rng rng(0x70AD5EED);
  const std::string path = "prop/trunc.log";
  std::vector<LogRecord> records;
  for (int i = 0; i < 30; ++i) records.push_back(RandomLogRecord(rng));

  FaultVfs vfs(1);
  std::vector<uint64_t> ends = WriteLog(&vfs, path, records);
  std::vector<uint8_t> full = *vfs.GetFileBytes(path);
  ASSERT_EQ(full.size(), ends.back());

  for (size_t len = 0; len <= full.size(); ++len) {
    FaultVfs trimmed(2);
    trimmed.SetFileBytes(path, std::vector<uint8_t>(full.begin(),
                                                    full.begin() + len));
    // Full frames fitting inside `len` bytes.
    size_t complete = 0;
    while (complete < ends.size() && ends[complete] <= len) ++complete;
    bool corrupt_tail = false;
    std::vector<LogRecord> got = ReadAll(&trimmed, path, &corrupt_tail);
    ASSERT_EQ(got.size(), complete) << "truncated at byte " << len;
    for (size_t i = 0; i < complete; ++i) {
      EXPECT_EQ(got[i], records[i]) << "record " << i << " at length " << len;
    }
    // A cut exactly on a frame boundary is a clean end of log; any
    // other cut is a detected torn tail.
    bool on_boundary = len == 0 || (complete > 0 && ends[complete - 1] == len);
    EXPECT_EQ(corrupt_tail, !on_boundary) << "truncated at byte " << len;
  }
}

TEST(LogPropertyTest, BitFlipAtEveryByteNeverYieldsACorruptedRecord) {
  Rng rng(0xF11BF11B);
  const std::string path = "prop/flip.log";
  std::vector<LogRecord> records;
  for (int i = 0; i < 20; ++i) records.push_back(RandomLogRecord(rng));

  FaultVfs vfs(3);
  std::vector<uint64_t> ends = WriteLog(&vfs, path, records);
  std::vector<uint8_t> full = *vfs.GetFileBytes(path);

  for (size_t byte = 0; byte < full.size(); ++byte) {
    // The frame this byte belongs to: all earlier frames must survive,
    // and reading stops at or before the damaged one.
    size_t frame = 0;
    while (ends[frame] <= byte) ++frame;

    FaultVfs damaged(4);
    damaged.SetFileBytes(path, full);
    uint64_t bit = byte * 8 + rng.Below(8);
    ASSERT_TRUE(damaged.FlipBit(path, bit).ok());

    std::vector<LogRecord> got = ReadAll(&damaged, path, nullptr);
    ASSERT_EQ(got.size(), frame) << "bit flip in byte " << byte;
    for (size_t i = 0; i < frame; ++i) {
      EXPECT_EQ(got[i], records[i]);
    }
  }
}

TEST(LogPropertyTest, KvStoreOnTruncatedLogRecoversACommittedPrefix) {
  const std::string path = "prop/kv.log";
  // Deterministic batches, committed one by one; model states between.
  std::vector<std::map<std::string, std::string>> models;
  models.push_back({});
  FaultVfs vfs(5);
  {
    Rng rng(0xBA7C);
    auto store = KvStore::Open(&vfs, path);
    ASSERT_TRUE(store.ok());
    for (int b = 0; b < 6; ++b) {
      WriteBatch batch;
      auto model = models.back();
      size_t n = 1 + rng.Below(3);
      for (size_t i = 0; i < n; ++i) {
        std::string key = "k" + std::to_string(rng.Below(5));
        if (!model.empty() && rng.Below(4) == 0) {
          batch.Delete(key);
          model.erase(key);
        } else {
          std::string value = "b" + std::to_string(b) + "-" +
                              std::to_string(rng.Below(1000));
          batch.Put(key, value);
          model[key] = value;
        }
      }
      ASSERT_TRUE((*store)->Apply(batch).ok());
      models.push_back(std::move(model));
    }
  }
  std::vector<uint8_t> full = *vfs.GetFileBytes(path);

  for (size_t len = 0; len <= full.size(); ++len) {
    FaultVfs trimmed(6);
    trimmed.SetFileBytes(path, std::vector<uint8_t>(full.begin(),
                                                    full.begin() + len));
    auto store = KvStore::Open(&trimmed, path);
    ASSERT_TRUE(store.ok()) << "truncated at byte " << len << ": "
                            << store.status();
    std::map<std::string, std::string> got;
    for (const std::string& key : (*store)->Keys()) {
      got[key] = *(*store)->Get(key);
    }
    bool is_prefix = false;
    for (const auto& model : models) {
      if (got == model) {
        is_prefix = true;
        break;
      }
    }
    EXPECT_TRUE(is_prefix)
        << "state after truncation at byte " << len
        << " is not a committed prefix (uncommitted or torn data leaked)";
  }
}

}  // namespace
}  // namespace dbpl
