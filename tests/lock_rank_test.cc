// Tests for the runtime lock-rank checker in common/mutex.h.
//
// The checker is the dynamic half of the locking discipline: Clang's
// -Wthread-safety proves *which lock* guards each field at compile
// time, and the rank checker proves *in which order* locks are taken
// at run time (DESIGN.md §10). Inversions abort, so the violation
// cases here are death tests.

#include "common/mutex.h"

#include <gtest/gtest.h>

namespace dbpl {
namespace {

#if DBPL_LOCK_RANK_CHECKS
constexpr bool kRankChecksOn = true;
#else
constexpr bool kRankChecksOn = false;
#endif

TEST(LockRankTest, OrderedAcquisitionIsAllowed) {
  Mutex writer(LockRank::kShardWriter, "test.writer");
  Mutex state(LockRank::kState, "test.state");
  // shard writer (30) < state publication (60): the Publish order.
  writer.Lock();
  state.Lock();
  state.Unlock();
  writer.Unlock();
}

TEST(LockRankTest, ServeIsTheOutermostRank) {
  // serve.mu_ (5) sits below the entire database stack: a worker that
  // pops the ready queue and then executes a request (which reaches
  // shard writer, lane, status, ...) follows the table. Note the
  // server never actually holds mu_ across execution — the rank only
  // proves that even if the handoff and the first database lock
  // overlapped, the order would still be sound.
  Mutex serve(LockRank::kServe, "test.serve");
  Mutex writer(LockRank::kShardWriter, "test.writer");
  Mutex status(LockRank::kWalStatus, "test.status");
  MutexLock l0(&serve);
  MutexLock l1(&writer);
  MutexLock l2(&status);
}

TEST(LockRankDeathTest, ServeUnderDatabaseLockAborts) {
  if (!kRankChecksOn) GTEST_SKIP() << "built with DBPL_LOCK_RANKS=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The forbidden shape: calling back into the server's session table
  // from inside the database write path (e.g. a write observer trying
  // to broadcast to sessions) would take 5 under 30.
  Mutex serve(LockRank::kServe, "test.serve");
  Mutex writer(LockRank::kShardWriter, "test.writer");
  EXPECT_DEATH(
      {
        MutexLock l0(&writer);
        MutexLock l1(&serve);
      },
      "lock-rank violation.*test\\.serve.*rank 5.*test\\.writer.*rank 30");
}

TEST(LockRankTest, FullTableInOrderIsAllowed) {
  // Every rank in ascending order — the widest legal stack.
  Mutex serve(LockRank::kServe, "test.serve");
  Mutex replica(LockRank::kReplica, "test.replica");
  Mutex meta(LockRank::kWalMeta, "test.meta");
  Mutex writer(LockRank::kShardWriter, "test.writer");
  Mutex sync(LockRank::kGroupCommit, "test.sync");
  Mutex lane(LockRank::kWalLane, "test.lane");
  Mutex state(LockRank::kState, "test.state");
  Mutex status(LockRank::kWalStatus, "test.status");
  MutexLock l0(&serve);
  MutexLock l1(&replica);
  MutexLock l2(&meta);
  MutexLock l3(&writer);
  MutexLock l4(&sync);
  MutexLock l5(&lane);
  MutexLock l6(&state);
  MutexLock l7(&status);
}

TEST(LockRankTest, ClusteredRanksMayBeHeldTogether) {
  // Shard writer mutexes are acquired as a set (in index order) by
  // RegisterExtent and SetWriteObserver; equal-rank re-acquisition is
  // legal for clustered ranks.
  ASSERT_TRUE(LockRankClusters(LockRank::kShardWriter));
  ASSERT_TRUE(LockRankClusters(LockRank::kWalLane));
  Mutex w0(LockRank::kShardWriter, "test.writer0");
  Mutex w1(LockRank::kShardWriter, "test.writer1");
  MutexLock l0(&w0);
  MutexLock l1(&w1);
}

TEST(LockRankTest, UnrankedMutexesAreExempt) {
  // Default-constructed mutexes opt out of rank checking entirely;
  // they may interleave with ranked ones in any order.
  Mutex plain;
  Mutex state(LockRank::kState, "test.state");
  MutexLock l0(&state);
  MutexLock l1(&plain);
}

TEST(LockRankTest, ReleaseAndReacquireLowerIsAllowed) {
  // Dropping back to an empty stack resets the watermark: the order
  // constraint is on *held* locks, not on history.
  Mutex writer(LockRank::kShardWriter, "test.writer");
  Mutex state(LockRank::kState, "test.state");
  { MutexLock lock(&state); }
  { MutexLock lock(&writer); }
}

TEST(LockRankDeathTest, InversionAborts) {
  if (!kRankChecksOn) GTEST_SKIP() << "built with DBPL_LOCK_RANKS=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // state publication (60) then shard writer (30) — the classic
  // deadlock shape the table exists to forbid.
  Mutex writer(LockRank::kShardWriter, "test.writer");
  Mutex state(LockRank::kState, "test.state");
  EXPECT_DEATH(
      {
        MutexLock l0(&state);
        MutexLock l1(&writer);
      },
      "lock-rank violation.*test\\.writer.*rank 30.*test\\.state.*rank 60");
}

TEST(LockRankDeathTest, EqualRankWithoutClusteringAborts) {
  if (!kRankChecksOn) GTEST_SKIP() << "built with DBPL_LOCK_RANKS=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // kState does not cluster: two state mutexes held together is a
  // latent deadlock (no defined order between them).
  Mutex s0(LockRank::kState, "test.state0");
  Mutex s1(LockRank::kState, "test.state1");
  EXPECT_DEATH(
      {
        MutexLock l0(&s0);
        MutexLock l1(&s1);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, CondVarWaitKeepsStackBalanced) {
  // CondVar::WaitFor unlocks and relocks through Mutex::unlock/lock,
  // so the rank bookkeeping must survive a wait: afterwards the same
  // higher rank can still be taken, and an inversion still aborts.
  Mutex sync(LockRank::kGroupCommit, "test.sync");
  Mutex status(LockRank::kWalStatus, "test.status");
  CondVar cv;
  sync.Lock();
  (void)cv.WaitFor(sync, std::chrono::milliseconds(1));
  { MutexLock lock(&status); }  // 40 -> 70: still legal after the wait
  sync.Unlock();
  if (!kRankChecksOn) GTEST_SKIP() << "built with DBPL_LOCK_RANKS=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex sync2(LockRank::kGroupCommit, "test.sync2");
        Mutex status2(LockRank::kWalStatus, "test.status2");
        CondVar cv2;
        status2.Lock();
        (void)cv2.WaitFor(status2, std::chrono::milliseconds(1));
        sync2.Lock();  // 70 held, taking 40: inversion
      },
      "lock-rank violation");
}

#if DBPL_LOCK_RANK_CHECKS
TEST(LockRankDeathTest, ReleasingAnUnheldRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Exercise the bookkeeping directly (unlocking a real std::mutex the
  // thread does not hold would be UB before the checker could speak).
  EXPECT_DEATH(internal::RankCheckRelease(LockRank::kState),
               "releasing rank 60 that this thread does not hold");
}
#endif

TEST(LockRankTest, SeqLockWriteSideParticipatesInRanking) {
  // The registration seqlock write side ranks at 55: above the shard
  // writers (30, held by RegisterExtent when it bumps the sequence),
  // below state publication (60).
  Mutex writer(LockRank::kShardWriter, "test.writer");
  Mutex state(LockRank::kState, "test.state");
  SeqLock seq;
  MutexLock lock(&writer);
  seq.WriteBegin();
  { MutexLock inner(&state); }
  seq.WriteEnd();
  // Reader validation is lock-free and unaffected.
  uint64_t before = seq.ReadBegin();
  EXPECT_TRUE(seq.ReadValidate(before));
}

TEST(LockRankDeathTest, SeqLockUnderStateAborts) {
  if (!kRankChecksOn) GTEST_SKIP() << "built with DBPL_LOCK_RANKS=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex state(LockRank::kState, "test.state");
        SeqLock seq;
        MutexLock lock(&state);
        seq.WriteBegin();  // 55 under 60: inversion
      },
      "lock-rank violation");
}

}  // namespace
}  // namespace dbpl
