// Tagged (variant) values: the value-level inhabitants of the variant
// types the Cardelli-style type layer always had.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "core/heap.h"
#include "core/order.h"
#include "core/value.h"
#include "serial/decoder.h"
#include "serial/encoder.h"
#include "types/subtype.h"
#include "types/type_of.h"

namespace dbpl::core {
namespace {

using types::Type;

TEST(TaggedValueTest, ConstructionAndAccessors) {
  Value v = Value::Tagged("ok", Value::Int(42));
  EXPECT_EQ(v.kind(), ValueKind::kTagged);
  EXPECT_EQ(v.tag(), "ok");
  EXPECT_EQ(v.payload(), Value::Int(42));
  EXPECT_EQ(v.ToString(), "ok(42)");
}

TEST(TaggedValueTest, EqualityAndHashing) {
  Value a = Value::Tagged("ok", Value::Int(1));
  Value b = Value::Tagged("ok", Value::Int(1));
  Value c = Value::Tagged("err", Value::Int(1));
  Value d = Value::Tagged("ok", Value::Int(2));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  // Total order is consistent.
  EXPECT_EQ(Compare(a, b), 0);
  EXPECT_NE(Compare(a, c), 0);
}

TEST(TaggedValueTest, InformationOrdering) {
  // Same tag: ordered by payload; different tags: incomparable.
  Value partial = Value::Tagged("emp", Value::RecordOf({{"Name", Value::String("J")}}));
  Value fuller = Value::Tagged(
      "emp", Value::RecordOf({{"Name", Value::String("J")},
                              {"Empno", Value::Int(1)}}));
  EXPECT_TRUE(LessEq(partial, fuller));
  EXPECT_FALSE(LessEq(fuller, partial));
  Value other = Value::Tagged("mgr", Value::RecordOf({{"Name", Value::String("J")}}));
  EXPECT_FALSE(LessEq(partial, other));
  EXPECT_FALSE(LessEq(other, partial));
}

TEST(TaggedValueTest, JoinAndMeet) {
  Value a = Value::Tagged("emp", Value::RecordOf({{"Name", Value::String("J")}}));
  Value b = Value::Tagged("emp", Value::RecordOf({{"Empno", Value::Int(1)}}));
  Result<Value> j = Join(a, b);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(*j, Value::Tagged("emp", Value::RecordOf(
                                         {{"Name", Value::String("J")},
                                          {"Empno", Value::Int(1)}})));
  // Different tags contradict.
  Value c = Value::Tagged("mgr", Value::RecordOf({}));
  EXPECT_FALSE(Join(a, c).ok());
  EXPECT_EQ(Meet(a, c), Value::Bottom());
  // Same tag: meet of payloads, under the tag.
  EXPECT_EQ(Meet(*j, a), a);
}

TEST(TaggedValueTest, PrincipalTypeIsSingleTagVariant) {
  Value v = Value::Tagged("ok", Value::Int(1));
  Type t = types::TypeOf(v);
  EXPECT_EQ(t, Type::VariantOf({{"ok", Type::Int()}}));
  // ...which is a subtype of any wider variant carrying the tag.
  Type wide = Type::VariantOf({{"ok", Type::Int()}, {"err", Type::String()}});
  EXPECT_TRUE(types::IsSubtype(t, wide));
  EXPECT_FALSE(types::IsSubtype(wide, t));
}

TEST(TaggedValueTest, SerializationRoundTrip) {
  Value v = Value::Tagged(
      "cons", Value::RecordOf({{"head", Value::Int(1)},
                               {"tail", Value::Tagged("nil", Value::RecordOf({}))}}));
  ByteBuffer buf;
  serial::EncodeValue(v, &buf);
  ByteReader in(buf);
  auto back = serial::DecodeValue(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v);
}

TEST(TaggedValueTest, RefsInsidePayloadsAreTraced) {
  Heap heap;
  Oid target = heap.Allocate(Value::Int(7));
  Oid holder = heap.Allocate(Value::Tagged("ref", Value::Ref(target)));
  auto live = heap.ReachableFrom({holder});
  EXPECT_EQ(live, (std::vector<Oid>{target, holder}));
}

TEST(TaggedValueTest, ModelsTheRecursiveListType) {
  // The inhabitants of Mu l. <nil: {} | cons: {head: Int, tail: l}>.
  Type list_t = Type::Mu(
      "l", Type::VariantOf(
               {{"nil", Type::RecordOf({})},
                {"cons", Type::RecordOf(
                             {{"head", Type::Int()}, {"tail", Type::Var("l")}})}}));
  Value nil = Value::Tagged("nil", Value::RecordOf({}));
  Value one_two = Value::Tagged(
      "cons", Value::RecordOf(
                  {{"head", Value::Int(1)},
                   {"tail", Value::Tagged(
                                "cons",
                                Value::RecordOf({{"head", Value::Int(2)},
                                                 {"tail", nil}}))}}));
  EXPECT_TRUE(types::IsSubtype(types::TypeOf(nil), list_t));
  EXPECT_TRUE(types::IsSubtype(types::TypeOf(one_two), list_t));
  // A malformed list (Bool head) does not inhabit the type.
  Value bad = Value::Tagged(
      "cons", Value::RecordOf(
                  {{"head", Value::Bool(true)}, {"tail", nil}}));
  EXPECT_FALSE(types::IsSubtype(types::TypeOf(bad), list_t));
}

}  // namespace
}  // namespace dbpl::core
