#include <gtest/gtest.h>

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "test_util.h"
#include "types/parse.h"
#include "types/type_of.h"

namespace dbpl::serial {
namespace {

using core::Value;
using types::Type;

void ExpectValueRoundTrip(const Value& v) {
  ByteBuffer buf;
  EncodeValue(v, &buf);
  ByteReader in(buf);
  Result<Value> back = DecodeValue(&in);
  ASSERT_TRUE(back.ok()) << v << ": " << back.status();
  EXPECT_EQ(*back, v);
  EXPECT_TRUE(in.AtEnd());
}

void ExpectTypeRoundTrip(const Type& t) {
  ByteBuffer buf;
  EncodeType(t, &buf);
  ByteReader in(buf);
  Result<Type> back = DecodeType(&in);
  ASSERT_TRUE(back.ok()) << t << ": " << back.status();
  EXPECT_EQ(*back, t);
  EXPECT_TRUE(in.AtEnd());
}

TEST(SerialTest, ValueRoundTripAtoms) {
  ExpectValueRoundTrip(Value::Bottom());
  ExpectValueRoundTrip(Value::Bool(true));
  ExpectValueRoundTrip(Value::Bool(false));
  ExpectValueRoundTrip(Value::Int(0));
  ExpectValueRoundTrip(Value::Int(-123456789));
  ExpectValueRoundTrip(Value::Real(3.14159));
  ExpectValueRoundTrip(Value::Real(-0.0));
  ExpectValueRoundTrip(Value::String(""));
  ExpectValueRoundTrip(Value::String("J Doe"));
  ExpectValueRoundTrip(Value::Ref(424242));
}

TEST(SerialTest, ValueRoundTripComposites) {
  ExpectValueRoundTrip(Value::RecordOf(
      {{"Name", Value::String("J Doe")},
       {"Addr", Value::RecordOf({{"City", Value::String("Austin")}})},
       {"Tags", Value::Set({Value::Int(1), Value::Int(2)})},
       {"Hist", Value::List({Value::Bool(true), Value::Bottom()})}}));
  ExpectValueRoundTrip(Value::Set({}));
  ExpectValueRoundTrip(Value::List({}));
  ExpectValueRoundTrip(Value::RecordOf({}));
}

TEST(SerialTest, ValueRoundTripCorpus) {
  for (const auto& v : dbpl::testing::Corpus(2024, 120, 3)) {
    ExpectValueRoundTrip(v);
  }
}

TEST(SerialTest, TypeRoundTripAll) {
  ExpectTypeRoundTrip(Type::Bottom());
  ExpectTypeRoundTrip(Type::Top());
  ExpectTypeRoundTrip(Type::Int());
  ExpectTypeRoundTrip(Type::Dynamic());
  ExpectTypeRoundTrip(*types::ParseType("{Name: String, Age: Int}"));
  ExpectTypeRoundTrip(*types::ParseType("<ok: Int | err: String>"));
  ExpectTypeRoundTrip(*types::ParseType("List[Set[Ref[Int]]]"));
  ExpectTypeRoundTrip(*types::ParseType("(Int, String) -> Bool"));
  ExpectTypeRoundTrip(
      *types::ParseType("Forall t <= {Name: String}. (List[Dynamic]) -> "
                        "List[Exists u <= t. u]"));
  ExpectTypeRoundTrip(*types::ParseType("Mu l. <nil: {} | cons: {tail: l}>"));
}

TEST(SerialTest, DynamicIsSelfDescribing) {
  dyndb::Dynamic d = dyndb::MakeDynamic(Value::RecordOf(
      {{"Name", Value::String("J Doe")}, {"Empno", Value::Int(1)}}));
  ByteBuffer buf;
  EncodeDynamic(d, &buf);
  ByteReader in(buf);
  Result<dyndb::Dynamic> back = DecodeDynamic(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value, d.value);
  EXPECT_EQ(back->type, d.type);
  // The type descriptor really is in the bytes: stripping the header and
  // type makes the payload undecodable as a dynamic.
  EXPECT_GT(buf.size(), 8u);
}

TEST(SerialTest, HeaderRejectsBadMagicAndVersion) {
  ByteBuffer buf;
  buf.PutU32(0xBADC0DE);
  buf.PutU32(kFormatVersion);
  ByteReader in(buf);
  EXPECT_EQ(DecodeHeader(&in).code(), StatusCode::kCorruption);

  ByteBuffer buf2;
  buf2.PutU32(kMagic);
  buf2.PutU32(kFormatVersion + 7);
  ByteReader in2(buf2);
  EXPECT_EQ(DecodeHeader(&in2).code(), StatusCode::kCorruption);
}

TEST(SerialTest, TruncatedPayloadsReportCorruptionNotCrash) {
  Value v = Value::RecordOf(
      {{"Name", Value::String("J Doe")},
       {"Tags", Value::Set({Value::Int(1), Value::Int(2)})}});
  ByteBuffer buf;
  EncodeValue(v, &buf);
  // Every strict prefix must fail cleanly.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader in(buf.data(), cut);
    Result<Value> r = DecodeValue(&in);
    EXPECT_FALSE(r.ok()) << "prefix length " << cut;
  }
}

TEST(SerialTest, UnknownTagsRejected) {
  ByteBuffer buf;
  buf.PutU8(200);
  {
    ByteReader in(buf);
    EXPECT_EQ(DecodeValue(&in).status().code(), StatusCode::kCorruption);
  }
  {
    ByteReader in(buf);
    EXPECT_EQ(DecodeType(&in).status().code(), StatusCode::kCorruption);
  }
}

TEST(SerialTest, HostileLengthsRejected) {
  // A record claiming 2^40 fields must not allocate or loop forever.
  ByteBuffer buf;
  buf.PutU8(static_cast<uint8_t>(core::ValueKind::kRecord));
  buf.PutVarint(1ull << 40);
  ByteReader in(buf);
  EXPECT_EQ(DecodeValue(&in).status().code(), StatusCode::kCorruption);
}

TEST(SerialTest, DeepNestingRejectedNotStackOverflow) {
  // 10k nested lists: decoder must stop at its depth bound.
  ByteBuffer buf;
  for (int i = 0; i < 10000; ++i) {
    buf.PutU8(static_cast<uint8_t>(core::ValueKind::kList));
    buf.PutVarint(1);
  }
  buf.PutU8(static_cast<uint8_t>(core::ValueKind::kInt));
  buf.PutVarintSigned(7);
  ByteReader in(buf);
  EXPECT_EQ(DecodeValue(&in).status().code(), StatusCode::kCorruption);
}

TEST(SerialTest, EncodingIsDeterministic) {
  Value v = Value::RecordOf({{"b", Value::Int(1)}, {"a", Value::Int(2)}});
  Value w = Value::RecordOf({{"a", Value::Int(2)}, {"b", Value::Int(1)}});
  ByteBuffer b1, b2;
  EncodeValue(v, &b1);
  EncodeValue(w, &b2);
  EXPECT_EQ(b1.vec(), b2.vec());
}

}  // namespace
}  // namespace dbpl::serial
