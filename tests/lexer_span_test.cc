// Regression tests for source spans: the lexer's line *and* column
// tracking (token.h used to record lines only, and positions at the
// END of multi-character tokens), multi-line string literals, and the
// spans the parser derives for expressions and declarations.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/span.h"

namespace dbpl::lang {
namespace {

std::vector<Token> MustLex(std::string_view source) {
  Result<std::vector<Token>> tokens = Lex(source);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return tokens.ok() ? std::move(tokens).value() : std::vector<Token>{};
}

TEST(SpanTest, PointAndJoinArithmetic) {
  // Point spans are zero-width markers at a position.
  Span point = Span::Point(3, 7);
  EXPECT_EQ(point.line, 3);
  EXPECT_EQ(point.column, 7);
  EXPECT_EQ(point.end_line, 3);
  EXPECT_EQ(point.end_column, 7);
  EXPECT_TRUE(point.valid());
  EXPECT_EQ(point.ToString(), "3:7");

  Span joined = Span::Join(Span{1, 5, 1, 9}, Span{2, 1, 2, 4});
  EXPECT_EQ(joined, (Span{1, 5, 2, 4}));

  // Joining with an invalid span keeps the valid side.
  EXPECT_EQ(Span::Join(Span{}, point), point);
  EXPECT_EQ(Span::Join(point, Span{}), point);
  EXPECT_FALSE(Span{}.valid());

  // Ordering is lexicographic on (line, column) — the diagnostic order.
  EXPECT_LT((Span{1, 9, 1, 10}), (Span{2, 1, 2, 2}));
  EXPECT_LT((Span{2, 1, 2, 2}), (Span{2, 3, 2, 4}));
}

TEST(LexerSpanTest, TokensRecordStartLineAndColumn) {
  std::vector<Token> tokens = MustLex("let answer = 42;\nanswer < 7;\n");
  // let answer = 42 ;
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kLet);
  EXPECT_EQ(tokens[0].span, (Span{1, 1, 1, 4}));
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].span, (Span{1, 5, 1, 11}));
  EXPECT_EQ(tokens[2].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[2].span, (Span{1, 12, 1, 13}));
  EXPECT_EQ(tokens[3].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[3].span, (Span{1, 14, 1, 16}));
  EXPECT_EQ(tokens[4].kind, TokenKind::kSemicolon);
  EXPECT_EQ(tokens[4].span, (Span{1, 16, 1, 17}));
  // Second line restarts the column counter.
  EXPECT_EQ(tokens[5].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[5].span, (Span{2, 1, 2, 7}));
  EXPECT_EQ(tokens[6].kind, TokenKind::kLt);
  EXPECT_EQ(tokens[6].span, (Span{2, 8, 2, 9}));
}

TEST(LexerSpanTest, TwoCharOperatorsSpanBothChars) {
  std::vector<Token> tokens = MustLex("{| == => |}");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kLBraceBar);
  EXPECT_EQ(tokens[0].span, (Span{1, 1, 1, 3}));
  EXPECT_EQ(tokens[1].kind, TokenKind::kEq);
  EXPECT_EQ(tokens[1].span, (Span{1, 4, 1, 6}));
  EXPECT_EQ(tokens[2].kind, TokenKind::kFatArrow);
  EXPECT_EQ(tokens[2].span, (Span{1, 7, 1, 9}));
  EXPECT_EQ(tokens[3].kind, TokenKind::kRBraceBar);
  EXPECT_EQ(tokens[3].span, (Span{1, 10, 1, 12}));
}

TEST(LexerSpanTest, StringLiteralSpansIncludeQuotes) {
  std::vector<Token> tokens = MustLex("  \"abc\" x");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLit);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[0].span, (Span{1, 3, 1, 8}));
  EXPECT_EQ(tokens[1].span, (Span{1, 9, 1, 10}));
}

TEST(LexerSpanTest, MultiLineStringLiteralsLexAndTrackLines) {
  // A literal newline inside a string used to be a lex error; it is
  // now legal and the token's span covers both lines.
  std::vector<Token> tokens = MustLex("\"two\nlines\" next");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLit);
  EXPECT_EQ(tokens[0].text, "two\nlines");
  EXPECT_EQ(tokens[0].span, (Span{1, 1, 2, 7}));
  // The next token starts on line 2 with a correct column.
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "next");
  EXPECT_EQ(tokens[1].span, (Span{2, 8, 2, 12}));
}

TEST(LexerSpanTest, CommentsAndBlankLinesAdvancePositions) {
  std::vector<Token> tokens = MustLex("-- comment\n\n  x");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].span, (Span{3, 3, 3, 4}));
}

TEST(LexerSpanTest, EofTokenSitsAtTheEnd) {
  std::vector<Token> tokens = MustLex("a\nbc");
  ASSERT_FALSE(tokens.empty());
  const Token& eof = tokens.back();
  EXPECT_EQ(eof.kind, TokenKind::kEof);
  EXPECT_EQ(eof.span.line, 2);
  EXPECT_EQ(eof.span.column, 3);
}

TEST(ParserSpanTest, ExpressionSpansCoverTheirExtent) {
  Result<Program> program = Parse("let x = 1 + 2 * 3;\n");
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->decls.size(), 1u);
  const Decl& decl = program->decls[0];
  // The declaration spans "let ... ;" inclusive.
  EXPECT_EQ(decl.span, (Span{1, 1, 1, 19}));
  EXPECT_EQ(decl.name_span, (Span{1, 5, 1, 6}));
  // The bound expression spans "1 + 2 * 3".
  ASSERT_NE(decl.expr, nullptr);
  EXPECT_EQ(decl.expr->span, (Span{1, 9, 1, 18}));
  // Its right operand spans "2 * 3".
  ASSERT_NE(decl.expr->b, nullptr);
  EXPECT_EQ(decl.expr->b->span, (Span{1, 13, 1, 18}));
}

TEST(ParserSpanTest, MultiLineExpressionsJoinAcrossLines) {
  Result<Program> program = Parse("{Name = \"J\",\n Age = 30};\n");
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->decls.size(), 1u);
  const Decl& decl = program->decls[0];
  ASSERT_NE(decl.expr, nullptr);
  EXPECT_EQ(decl.expr->span.line, 1);
  EXPECT_EQ(decl.expr->span.column, 1);
  EXPECT_EQ(decl.expr->span.end_line, 2);
  // Declaration runs through the ';' on line 2.
  EXPECT_EQ(decl.span.end_line, 2);
  EXPECT_GT(decl.span.end_column, decl.expr->span.end_column - 1);
}

TEST(ParserSpanTest, LetInBinderNameSpanIsTheName) {
  Result<Program> program = Parse("let total = 1 in total + 1;\n");
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->decls.size(), 1u);
  const ExprPtr& let_in = program->decls[0].expr;
  ASSERT_NE(let_in, nullptr);
  ASSERT_EQ(let_in->kind, ExprKind::kLet);
  EXPECT_EQ(let_in->name_span, (Span{1, 5, 1, 10}));
}

}  // namespace
}  // namespace dbpl::lang
