// Robustness ("fuzz-lite") tests: every parser and decoder in the
// library must reject arbitrary or mutated input with a clean Status —
// never a crash, hang, or unbounded allocation. Deterministic PRNG so
// failures reproduce.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "lang/interp.h"
#include "lang/parser.h"
#include "serial/decoder.h"
#include "serial/encoder.h"
#include "storage/fault_vfs.h"
#include "storage/log.h"
#include "storage/pager.h"
#include "test_util.h"
#include "types/parse.h"

namespace dbpl {
namespace {

using dbpl::testing::Rng;

std::vector<uint8_t> RandomBytes(Rng& rng, size_t max_len) {
  std::vector<uint8_t> out(rng.Below(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng.Below(256));
  return out;
}

TEST(FuzzTest, DecodeValueOnRandomBytesNeverCrashes) {
  Rng rng(0xF00D);
  for (int i = 0; i < 3000; ++i) {
    std::vector<uint8_t> bytes = RandomBytes(rng, 64);
    ByteReader in(bytes.data(), bytes.size());
    auto v = serial::DecodeValue(&in);
    // Either a value or a clean error; both are acceptable.
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(FuzzTest, DecodeTypeOnRandomBytesNeverCrashes) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 3000; ++i) {
    std::vector<uint8_t> bytes = RandomBytes(rng, 64);
    ByteReader in(bytes.data(), bytes.size());
    auto t = serial::DecodeType(&in);
    if (!t.ok()) {
      EXPECT_EQ(t.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(FuzzTest, MutatedValidPayloadsFailCleanly) {
  // Encode real values, flip one byte at every position, decode. The
  // decoder may still succeed (the flip may hit a don't-care), but it
  // must never crash, and successes must produce *some* valid value.
  Rng rng(0xCAFE);
  auto corpus = dbpl::testing::Corpus(0x5EED, 20, 2);
  for (const auto& v : corpus) {
    ByteBuffer buf;
    serial::EncodeValue(v, &buf);
    for (size_t pos = 0; pos < buf.size(); ++pos) {
      std::vector<uint8_t> mutated = buf.vec();
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.Below(255));
      ByteReader in(mutated.data(), mutated.size());
      auto decoded = serial::DecodeValue(&in);
      if (decoded.ok()) {
        // Render it: exercises every accessor on the decoded shape.
        EXPECT_FALSE(decoded->ToString().empty());
      }
    }
  }
}

TEST(FuzzTest, TypeParserOnNoise) {
  Rng rng(0x7E57);
  const char alphabet[] = "{}[]()<>|,:.->IntStrgBol ForalExists Mu tuv";
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    size_t len = rng.Below(40);
    for (size_t k = 0; k < len; ++k) {
      text.push_back(alphabet[rng.Below(sizeof(alphabet) - 1)]);
    }
    auto t = types::ParseType(text);
    if (t.ok()) {
      // Whatever parsed must round-trip through its own printer.
      auto again = types::ParseType(t->ToString());
      ASSERT_TRUE(again.ok()) << t->ToString();
      EXPECT_EQ(*again, *t);
    }
  }
}

TEST(FuzzTest, LangParserOnNoise) {
  Rng rng(0x1234);
  const char alphabet[] =
      "letfunifthenelsedynamiccoercetotypeofjoininsertintogetfromdatabase"
      " (){}[]=;:.,+-*/<>\"'xyz123";
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    size_t len = rng.Below(60);
    for (size_t k = 0; k < len; ++k) {
      text.push_back(alphabet[rng.Below(sizeof(alphabet) - 1)]);
    }
    auto p = lang::Parse(text);
    // Either parses or fails cleanly; never crashes.
    if (!p.ok()) {
      EXPECT_FALSE(p.status().message().empty());
    }
  }
}

TEST(FuzzTest, InterpreterOnMutatedValidPrograms) {
  const std::string base = R"(
    type Person = {Name: String};
    let db = database;
    insert {Name = "p"} into db;
    let d = dynamic 3;
    coerce d to Int;
    length(get Person from db);
  )";
  Rng rng(0xABCD);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    // Apply 1-3 random single-character mutations.
    size_t edits = 1 + rng.Below(3);
    for (size_t k = 0; k < edits; ++k) {
      size_t pos = rng.Below(mutated.size());
      mutated[pos] = static_cast<char>(32 + rng.Below(95));
    }
    lang::Interp interp;
    auto out = interp.Run(mutated);
    // Either runs or reports a clean Status.
    if (!out.ok()) {
      EXPECT_FALSE(out.status().message().empty());
    }
  }
}

TEST(FuzzTest, LogReaderOnRandomFiles) {
  Rng rng(0xD15C);
  const std::string path = ::testing::TempDir() + "/dbpl_fuzz_log";
  for (int i = 0; i < 100; ++i) {
    {
      std::remove(path.c_str());
      std::FILE* f = std::fopen(path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      auto bytes = RandomBytes(rng, 256);
      std::fwrite(bytes.data(), 1, bytes.size(), f);
      std::fclose(f);
    }
    auto reader = storage::LogReader::Open(path);
    ASSERT_TRUE(reader.ok());
    storage::LogRecord record;
    int guard = 0;
    while (true) {
      auto has = (*reader)->Next(&record);
      ASSERT_TRUE(has.ok());
      if (!*has) break;
      ASSERT_LT(++guard, 1000);  // must terminate
    }
  }
  std::remove(path.c_str());
}

TEST(FuzzTest, LogReaderOnRandomBuffersInMemory) {
  // Same property as LogReaderOnRandomFiles, but through the in-memory
  // FaultVfs: many more iterations, no disk I/O.
  Rng rng(0x106F);
  storage::FaultVfs vfs(0x106F);
  const std::string path = "fuzz/log";
  for (int i = 0; i < 300; ++i) {
    vfs.SetFileBytes(path, RandomBytes(rng, 512));
    auto reader = storage::LogReader::Open(&vfs, path);
    ASSERT_TRUE(reader.ok());
    storage::LogRecord record;
    int guard = 0;
    while (true) {
      auto has = (*reader)->Next(&record);
      ASSERT_TRUE(has.ok()) << has.status();
      if (!*has) break;
      ASSERT_LT(++guard, 1000);  // must terminate
    }
  }
}

TEST(FuzzTest, PagerReadOnRandomBuffersInMemory) {
  // Arbitrary bytes presented as a page file: every page either reads
  // back cleanly or fails with kCorruption — never crashes.
  Rng rng(0x9A6E);
  storage::FaultVfs vfs(0x9A6E);
  constexpr uint32_t kPageSize = 64;
  const std::string path = "fuzz/pages";
  for (int i = 0; i < 300; ++i) {
    auto bytes = RandomBytes(rng, 8 * kPageSize);
    bytes.resize(bytes.size() - bytes.size() % kPageSize);
    vfs.SetFileBytes(path, bytes);
    auto pager = storage::Pager::Open(&vfs, path, kPageSize);
    ASSERT_TRUE(pager.ok()) << pager.status();
    for (uint64_t page = 0; page < (*pager)->page_count(); ++page) {
      auto data = (*pager)->Read(page);
      if (!data.ok()) {
        EXPECT_EQ(data.status().code(), StatusCode::kCorruption);
      }
    }
  }
  // A file that is not a whole number of pages is rejected at open.
  vfs.SetFileBytes(path, std::vector<uint8_t>(kPageSize + 1, 0xAB));
  auto pager = storage::Pager::Open(&vfs, path, kPageSize);
  ASSERT_FALSE(pager.ok());
  EXPECT_EQ(pager.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace dbpl
