// Seeded randomized property tests for the two lattices at the heart of
// the paper — the information order on values (§ "Relations as
// cochains") and the subtype order on types — plus the differential law
// tying the three Get strategies of dyndb::Database together:
//
//   GetScan ≡ GetViaExtent ≡ GetViaIndex ≡ their parallel variants
//
// on any database and any query type. The generators live in
// tests/test_util.h and are shared with partitioned_join_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/order.h"
#include "core/value.h"
#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "test_util.h"
#include "types/lattice.h"
#include "types/subtype.h"
#include "types/type.h"

namespace dbpl {
namespace {

using core::Compare;
using core::LessEq;
using core::Value;
using testing::Corpus;
using testing::RandomPartialRecord;
using testing::RandomType;
using testing::RandomValue;
using testing::Rng;
using testing::TypeCorpus;
using types::Type;

// ---------------------------------------------------------------------
// Value lattice: ⊑ is a partial order.
// ---------------------------------------------------------------------

TEST(ValueOrderLaws, Reflexive) {
  for (const Value& v : Corpus(0xA1, 60, 3)) {
    EXPECT_TRUE(LessEq(v, v)) << v.ToString();
  }
}

TEST(ValueOrderLaws, Antisymmetric) {
  std::vector<Value> vs = Corpus(0xA2, 40, 2);
  for (const Value& a : vs) {
    for (const Value& b : vs) {
      if (LessEq(a, b) && LessEq(b, a)) {
        EXPECT_EQ(a, b) << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

TEST(ValueOrderLaws, Transitive) {
  std::vector<Value> vs = Corpus(0xA3, 24, 2);
  for (const Value& a : vs) {
    for (const Value& b : vs) {
      if (!LessEq(a, b)) continue;
      for (const Value& c : vs) {
        if (LessEq(b, c)) {
          EXPECT_TRUE(LessEq(a, c))
              << a.ToString() << " ⊑ " << b.ToString() << " ⊑ " << c.ToString();
        }
      }
    }
  }
}

TEST(ValueOrderLaws, BottomIsLeast) {
  for (const Value& v : Corpus(0xA4, 60, 3)) {
    EXPECT_TRUE(LessEq(Value::Bottom(), v));
  }
}

// ---------------------------------------------------------------------
// Value join ⊔ (partial: fails with Inconsistent when no upper bound).
// ---------------------------------------------------------------------

TEST(ValueJoinLaws, Idempotent) {
  for (const Value& v : Corpus(0xB1, 60, 3)) {
    Result<Value> j = core::Join(v, v);
    ASSERT_TRUE(j.ok()) << v.ToString();
    EXPECT_EQ(*j, v);
  }
}

TEST(ValueJoinLaws, Commutative) {
  std::vector<Value> vs = Corpus(0xB2, 30, 2);
  for (const Value& a : vs) {
    for (const Value& b : vs) {
      Result<Value> ab = core::Join(a, b);
      Result<Value> ba = core::Join(b, a);
      ASSERT_EQ(ab.ok(), ba.ok()) << a.ToString() << " ⊔ " << b.ToString();
      if (ab.ok()) EXPECT_EQ(*ab, *ba);
    }
  }
}

TEST(ValueJoinLaws, Associative) {
  // When both groupings are defined they agree. (One grouping may fail
  // while the other succeeds only through an intermediate inconsistency,
  // so definedness itself is compared only when all pairwise joins
  // exist.)
  std::vector<Value> vs = Corpus(0xB3, 14, 2);
  for (const Value& a : vs) {
    for (const Value& b : vs) {
      for (const Value& c : vs) {
        Result<Value> ab = core::Join(a, b);
        Result<Value> bc = core::Join(b, c);
        if (!ab.ok() || !bc.ok()) continue;
        Result<Value> left = core::Join(*ab, c);
        Result<Value> right = core::Join(a, *bc);
        ASSERT_EQ(left.ok(), right.ok())
            << a.ToString() << ", " << b.ToString() << ", " << c.ToString();
        if (left.ok()) EXPECT_EQ(*left, *right);
      }
    }
  }
}

TEST(ValueJoinLaws, JoinIsLeastUpperBound) {
  std::vector<Value> vs = Corpus(0xB4, 22, 2);
  for (const Value& a : vs) {
    for (const Value& b : vs) {
      Result<Value> j = core::Join(a, b);
      if (!j.ok()) continue;
      EXPECT_TRUE(LessEq(a, *j));
      EXPECT_TRUE(LessEq(b, *j));
      // Least: any upper bound in the corpus dominates the join.
      for (const Value& c : vs) {
        if (LessEq(a, c) && LessEq(b, c)) {
          EXPECT_TRUE(LessEq(*j, c))
              << a.ToString() << " ⊔ " << b.ToString() << " vs " << c.ToString();
        }
      }
    }
  }
}

TEST(ValueJoinLaws, UpperBoundImpliesJoinExists) {
  // The adjoint direction: if some c bounds both a and b then a ⊔ b is
  // defined (and ⊑ c, checked above).
  std::vector<Value> vs = Corpus(0xB5, 22, 2);
  for (const Value& a : vs) {
    for (const Value& b : vs) {
      for (const Value& c : vs) {
        if (LessEq(a, c) && LessEq(b, c)) {
          EXPECT_TRUE(core::Join(a, b).ok())
              << a.ToString() << " ⊔ " << b.ToString() << " under "
              << c.ToString();
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Value meet ⊓ (total) and the meet/join adjointness.
// ---------------------------------------------------------------------

TEST(ValueMeetLaws, MeetIsGreatestLowerBound) {
  std::vector<Value> vs = Corpus(0xC1, 22, 2);
  for (const Value& a : vs) {
    for (const Value& b : vs) {
      Value m = core::Meet(a, b);
      EXPECT_TRUE(LessEq(m, a)) << m.ToString() << " vs " << a.ToString();
      EXPECT_TRUE(LessEq(m, b)) << m.ToString() << " vs " << b.ToString();
      // Adjointness: c ⊑ a ∧ c ⊑ b  ⟺  c ⊑ a ⊓ b.
      for (const Value& c : vs) {
        EXPECT_EQ(LessEq(c, a) && LessEq(c, b), LessEq(c, m))
            << c.ToString() << " under " << a.ToString() << " ⊓ "
            << b.ToString();
      }
    }
  }
}

TEST(ValueMeetLaws, IdempotentAndCommutative) {
  std::vector<Value> vs = Corpus(0xC2, 30, 2);
  for (const Value& a : vs) {
    EXPECT_EQ(core::Meet(a, a), a);
    for (const Value& b : vs) {
      EXPECT_EQ(core::Meet(a, b), core::Meet(b, a));
    }
  }
}

// ---------------------------------------------------------------------
// Type lattice: ≤ is a preorder whose kernel is TypeEquiv; Lub/Glb are
// bounds.
// ---------------------------------------------------------------------

TEST(TypeOrderLaws, ReflexiveAndKernelIsEquiv) {
  std::vector<Type> ts = TypeCorpus(0xD1, 40, 2);
  for (const Type& t : ts) {
    EXPECT_TRUE(types::IsSubtype(t, t)) << t.ToString();
  }
  for (const Type& a : ts) {
    for (const Type& b : ts) {
      EXPECT_EQ(types::IsSubtype(a, b) && types::IsSubtype(b, a),
                types::TypeEquiv(a, b))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(TypeOrderLaws, Transitive) {
  std::vector<Type> ts = TypeCorpus(0xD2, 20, 2);
  for (const Type& a : ts) {
    for (const Type& b : ts) {
      if (!types::IsSubtype(a, b)) continue;
      for (const Type& c : ts) {
        if (types::IsSubtype(b, c)) {
          EXPECT_TRUE(types::IsSubtype(a, c))
              << a.ToString() << " ≤ " << b.ToString() << " ≤ " << c.ToString();
        }
      }
    }
  }
}

TEST(TypeOrderLaws, TopAndBottomBound) {
  for (const Type& t : TypeCorpus(0xD3, 40, 2)) {
    EXPECT_TRUE(types::IsSubtype(t, Type::Top())) << t.ToString();
    EXPECT_TRUE(types::IsSubtype(Type::Bottom(), t)) << t.ToString();
  }
}

TEST(TypeLatticeLaws, LubIsUpperBoundAndCommutes) {
  std::vector<Type> ts = TypeCorpus(0xD4, 18, 2);
  for (const Type& a : ts) {
    for (const Type& b : ts) {
      Type lub = types::Lub(a, b);
      EXPECT_TRUE(types::IsSubtype(a, lub))
          << a.ToString() << " vs lub " << lub.ToString();
      EXPECT_TRUE(types::IsSubtype(b, lub))
          << b.ToString() << " vs lub " << lub.ToString();
      EXPECT_TRUE(types::TypeEquiv(lub, types::Lub(b, a)));
    }
  }
}

TEST(TypeLatticeLaws, GlbIsLowerBoundAndAgreesWithConsistency) {
  std::vector<Type> ts = TypeCorpus(0xD5, 18, 2);
  for (const Type& a : ts) {
    for (const Type& b : ts) {
      Result<Type> glb = types::Glb(a, b);
      EXPECT_EQ(glb.ok(), types::ConsistentTypes(a, b))
          << a.ToString() << " ⊓ " << b.ToString();
      if (glb.ok()) {
        EXPECT_TRUE(types::IsSubtype(*glb, a));
        EXPECT_TRUE(types::IsSubtype(*glb, b));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Differential law over the database: every Get strategy computes the
// same multiset, sequentially and sharded.
// ---------------------------------------------------------------------

std::vector<Value> Sorted(std::vector<Value> vs) {
  std::sort(vs.begin(), vs.end(),
            [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  return vs;
}

TEST(GetDifferential, AllStrategiesAgreeOnRandomDatabases) {
  Rng rng(0xF1);
  for (int trial = 0; trial < 8; ++trial) {
    dyndb::Database db;
    // Query types: a few random ones plus Top (matches everything) and
    // a record type the partial-record generator frequently inhabits.
    std::vector<Type> queries = TypeCorpus(0x100 + trial, 4, 1);
    queries.push_back(Type::Top());
    queries.push_back(Type::RecordOf({{"A", Type::Int()}}));
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_TRUE(
          db.RegisterExtent("q" + std::to_string(q), queries[q]).ok());
    }
    // Mixed population: generic random values and partial records.
    for (int i = 0; i < 64; ++i) {
      db.MustInsertValue(rng.Coin() ? RandomValue(rng, 2)
                                : RandomPartialRecord(rng, 25, true));
    }

    dyndb::Database::Snapshot snap = db.GetSnapshot();
    for (size_t q = 0; q < queries.size(); ++q) {
      const Type& t = queries[q];
      std::vector<Value> scan = Sorted(snap.GetScan(t));
      Result<std::vector<Value>> extent = snap.GetViaExtent(t);
      ASSERT_TRUE(extent.ok()) << t.ToString();
      EXPECT_EQ(scan, Sorted(*extent)) << t.ToString();
      EXPECT_EQ(scan, Sorted(snap.GetViaIndex(t))) << t.ToString();
      // Parallel variants must be *identical* (not just equal as
      // multisets) to their sequential counterparts — sharding is
      // order-preserving.
      for (int threads : {2, 4}) {
        dyndb::GetOptions opts{.threads = threads};
        EXPECT_EQ(snap.GetScan(t), snap.GetScan(t, opts)) << t.ToString();
        EXPECT_EQ(snap.GetViaIndex(t), snap.GetViaIndex(t, opts))
            << t.ToString();
      }
    }
  }
}

TEST(GetDifferential, SubtypeImpliesExtentContainment) {
  // The paper's central claim, on random data: T ≤ U ⇒ Get(T) ⊆ Get(U)
  // within one snapshot (as multisets).
  Rng rng(0xF2);
  dyndb::Database db;
  for (int i = 0; i < 96; ++i) db.MustInsertValue(RandomValue(rng, 2));
  std::vector<Type> ts = TypeCorpus(0xF3, 12, 2);
  dyndb::Database::Snapshot snap = db.GetSnapshot();
  for (const Type& t : ts) {
    for (const Type& u : ts) {
      if (!types::IsSubtype(t, u)) continue;
      std::vector<Value> sub = Sorted(snap.GetScan(t));
      std::vector<Value> sup = Sorted(snap.GetScan(u));
      EXPECT_TRUE(std::includes(
          sup.begin(), sup.end(), sub.begin(), sub.end(),
          [](const Value& a, const Value& b) { return Compare(a, b) < 0; }))
          << t.ToString() << " ≤ " << u.ToString();
    }
  }
}

}  // namespace
}  // namespace dbpl
