#include "core/grelation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/order.h"
#include "core/value.h"
#include "test_util.h"

namespace dbpl::core {
namespace {

Value Str(const char* s) { return Value::String(s); }

Value Addr(const char* city, const char* state) {
  std::vector<Value::RecordField> fields;
  if (city) fields.push_back({"City", Str(city)});
  if (state) fields.push_back({"State", Str(state)});
  return Value::RecordOf(std::move(fields));
}

Value Emp(const char* name, const char* dept, Value addr) {
  std::vector<Value::RecordField> fields;
  if (name) fields.push_back({"Name", Str(name)});
  if (dept) fields.push_back({"Dept", Str(dept)});
  fields.push_back({"Addr", std::move(addr)});
  return Value::RecordOf(std::move(fields));
}

// R1 from the paper's Figure 1.
GRelation FigureR1() {
  return GRelation::FromObjects({
      Emp("J Doe", "Sales", Addr("Moose", nullptr)),
      Value::RecordOf({{"Name", Str("M Dee")}, {"Dept", Str("Manuf")}}),
      Emp("N Bug", nullptr, Addr(nullptr, "MT")),
  });
}

// R2 from the paper's Figure 1.
GRelation FigureR2() {
  return GRelation::FromObjects({
      Value::RecordOf({{"Dept", Str("Sales")}, {"Addr", Addr(nullptr, "WY")}}),
      Value::RecordOf(
          {{"Dept", Str("Admin")}, {"Addr", Addr("Billings", nullptr)}}),
      Value::RecordOf({{"Dept", Str("Manuf")}, {"Addr", Addr(nullptr, "MT")}}),
  });
}

// R1 ⋈ R2 from the paper's Figure 1, verbatim.
GRelation FigureJoin() {
  return GRelation::FromObjects({
      Emp("J Doe", "Sales", Addr("Moose", "WY")),
      Emp("M Dee", "Manuf", Addr(nullptr, "MT")),
      Emp("N Bug", "Manuf", Addr(nullptr, "MT")),
      Emp("N Bug", "Admin", Addr("Billings", "MT")),
  });
}

TEST(GRelationTest, FigureOneExact) {
  GRelation joined = *GRelation::Join(FigureR1(), FigureR2());
  EXPECT_EQ(joined, FigureJoin()) << "got:\n"
                                  << joined.ToString() << "\nwant:\n"
                                  << FigureJoin().ToString();
  EXPECT_TRUE(joined.CheckInvariant().ok());
  EXPECT_EQ(joined.size(), 4u);
}

TEST(GRelationTest, FigureOneJoinIsAboveBothInputs) {
  GRelation r1 = FigureR1();
  GRelation r2 = FigureR2();
  GRelation j = *GRelation::Join(r1, r2);
  EXPECT_TRUE(GRelation::LessEq(r1, j));
  EXPECT_TRUE(GRelation::LessEq(r2, j));
}

TEST(GRelationTest, InsertIncomparableObjects) {
  GRelation r;
  EXPECT_EQ(r.Insert(Value::RecordOf({{"a", Value::Int(1)}})),
            GRelation::InsertOutcome::kInserted);
  EXPECT_EQ(r.Insert(Value::RecordOf({{"b", Value::Int(2)}})),
            GRelation::InsertOutcome::kInserted);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.CheckInvariant().ok());
}

TEST(GRelationTest, InsertLessInformativeIsAbsorbed) {
  GRelation r;
  Value big =
      Value::RecordOf({{"a", Value::Int(1)}, {"b", Value::Int(2)}});
  r.Insert(big);
  EXPECT_EQ(r.Insert(Value::RecordOf({{"a", Value::Int(1)}})),
            GRelation::InsertOutcome::kAbsorbed);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(big));
}

TEST(GRelationTest, InsertMoreInformativeSubsumes) {
  GRelation r;
  Value small = Value::RecordOf({{"a", Value::Int(1)}});
  r.Insert(small);
  Value big =
      Value::RecordOf({{"a", Value::Int(1)}, {"b", Value::Int(2)}});
  EXPECT_EQ(r.Insert(big), GRelation::InsertOutcome::kSubsumed);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(big));
  EXPECT_FALSE(r.Contains(small));
  EXPECT_TRUE(r.Covers(small));
}

TEST(GRelationTest, InsertDuplicateIsAbsorbed) {
  GRelation r;
  Value v = Value::RecordOf({{"a", Value::Int(1)}});
  EXPECT_EQ(r.Insert(v), GRelation::InsertOutcome::kInserted);
  EXPECT_EQ(r.Insert(v), GRelation::InsertOutcome::kAbsorbed);
  EXPECT_EQ(r.size(), 1u);
}

TEST(GRelationTest, SubsumeMultiple) {
  GRelation r;
  r.Insert(Value::RecordOf({{"a", Value::Int(1)}}));
  r.Insert(Value::RecordOf({{"b", Value::Int(2)}}));
  r.Insert(Value::RecordOf({{"c", Value::Int(3)}}));
  Value big = Value::RecordOf(
      {{"a", Value::Int(1)}, {"b", Value::Int(2)}, {"d", Value::Int(4)}});
  EXPECT_EQ(r.Insert(big), GRelation::InsertOutcome::kSubsumed);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(big));
  EXPECT_TRUE(r.Contains(Value::RecordOf({{"c", Value::Int(3)}})));
}

TEST(GRelationTest, FromValueRequiresSet) {
  EXPECT_FALSE(GRelation::FromValue(Value::Int(1)).ok());
  Result<GRelation> r = GRelation::FromValue(
      Value::Set({Value::RecordOf({{"a", Value::Int(1)}})}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(GRelationTest, ToValueRoundTrip) {
  GRelation r = FigureR1();
  Result<GRelation> back = GRelation::FromValue(r.ToValue());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, r);
}

TEST(GRelationTest, ProjectReducesToCochain) {
  GRelation r = FigureJoin();
  GRelation p = *r.Project({"Dept"});
  EXPECT_TRUE(p.CheckInvariant().ok());
  // Four objects project onto three distinct departments.
  EXPECT_EQ(p.size(), 3u);
  EXPECT_TRUE(p.Contains(Value::RecordOf({{"Dept", Str("Sales")}})));
  EXPECT_TRUE(p.Contains(Value::RecordOf({{"Dept", Str("Manuf")}})));
  EXPECT_TRUE(p.Contains(Value::RecordOf({{"Dept", Str("Admin")}})));
}

TEST(GRelationTest, SelectByPredicate) {
  GRelation r = FigureJoin();
  GRelation s = r.Select([](const Value& v) {
    const Value* name = v.FindField("Name");
    return name != nullptr && name->AsString() == "N Bug";
  });
  EXPECT_EQ(s.size(), 2u);
}

TEST(GRelationTest, MergeKeepsMaxima) {
  GRelation a;
  a.Insert(Value::RecordOf({{"a", Value::Int(1)}}));
  GRelation b;
  b.Insert(Value::RecordOf({{"a", Value::Int(1)}, {"b", Value::Int(2)}}));
  GRelation m = GRelation::Merge(a, b);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(
      m.Contains(Value::RecordOf({{"a", Value::Int(1)}, {"b", Value::Int(2)}})));
}

TEST(GRelationTest, EmptyRelationIsTopAndJoinAbsorbs) {
  GRelation empty;
  GRelation r = FigureR1();
  EXPECT_TRUE(GRelation::LessEq(r, empty));
  EXPECT_FALSE(GRelation::LessEq(empty, r));
  // Joining with the empty relation yields the empty relation: there is
  // nothing consistent to pair with.
  EXPECT_EQ(GRelation::Join(r, empty)->size(), 0u);
}

// Classical-equivalence: on flat, total records over the same attribute
// set, the generalized join must coincide with the classical natural
// join computed naively.
TEST(GRelationTest, GeneralizedJoinGeneralizesNaturalJoin) {
  dbpl::testing::Rng rng(42);
  // Build two flat total relations sharing attribute B.
  // r1(A, B), r2(B, C).
  std::vector<Value> t1, t2;
  for (int i = 0; i < 12; ++i) {
    t1.push_back(Value::RecordOf(
        {{"A", Value::Int(static_cast<int64_t>(rng.Below(4)))},
         {"B", Value::Int(static_cast<int64_t>(rng.Below(3)))}}));
    t2.push_back(Value::RecordOf(
        {{"B", Value::Int(static_cast<int64_t>(rng.Below(3)))},
         {"C", Value::Int(static_cast<int64_t>(rng.Below(4)))}}));
  }
  GRelation r1 = GRelation::FromObjects(t1);
  GRelation r2 = GRelation::FromObjects(t2);
  GRelation gen = *GRelation::Join(r1, r2);

  // Naive classical natural join on the deduplicated inputs.
  GRelation classic;
  for (const Value& a : r1.objects()) {
    for (const Value& b : r2.objects()) {
      if (*a.FindField("B") == *b.FindField("B")) {
        classic.Insert(Value::RecordOf({{"A", *a.FindField("A")},
                                        {"B", *a.FindField("B")},
                                        {"C", *b.FindField("C")}}));
      }
    }
  }
  EXPECT_EQ(gen, classic);
}

class GRelationPropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, GRelationPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST_P(GRelationPropertyTest, InvariantHoldsUnderRandomOperations) {
  dbpl::testing::Rng rng(GetParam());
  GRelation r;
  for (int i = 0; i < 60; ++i) {
    r.Insert(dbpl::testing::RandomRecord(rng));
    ASSERT_TRUE(r.CheckInvariant().ok()) << r.ToString();
  }
  GRelation other;
  for (int i = 0; i < 10; ++i) other.Insert(dbpl::testing::RandomRecord(rng));
  GRelation j = *GRelation::Join(r, other);
  EXPECT_TRUE(j.CheckInvariant().ok());
  GRelation m = GRelation::Merge(r, other);
  EXPECT_TRUE(m.CheckInvariant().ok());
  Result<GRelation> p = r.Project({"Name", "Dept"});
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->CheckInvariant().ok());
}

TEST_P(GRelationPropertyTest, InsertIsOrderInsensitive) {
  dbpl::testing::Rng rng(GetParam() * 7);
  std::vector<Value> objs;
  for (int i = 0; i < 25; ++i) objs.push_back(dbpl::testing::RandomRecord(rng));
  GRelation fwd = GRelation::FromObjects(objs);
  std::reverse(objs.begin(), objs.end());
  GRelation rev = GRelation::FromObjects(objs);
  EXPECT_EQ(fwd, rev);
}

TEST(GRelationTest, HoareOrderingBasics) {
  GRelation small;
  small.Insert(Value::RecordOf({{"a", Value::Int(1)}}));
  GRelation big;
  big.Insert(Value::RecordOf({{"a", Value::Int(1)}, {"b", Value::Int(2)}}));
  big.Insert(Value::RecordOf({{"c", Value::Int(3)}}));
  // Every object of `small` is refined by some object of `big`.
  EXPECT_TRUE(GRelation::LessEqHoare(small, big));
  EXPECT_FALSE(GRelation::LessEqHoare(big, small));
  // Contrast with the Smyth ordering, which points the other way here.
  EXPECT_FALSE(GRelation::LessEq(small, big));
  // The empty relation is the BOTTOM of the Hoare ordering (vacuously
  // below everything) where it was the TOP of the Smyth ordering.
  GRelation empty;
  EXPECT_TRUE(GRelation::LessEqHoare(empty, small));
  EXPECT_FALSE(GRelation::LessEqHoare(small, empty));
}

TEST_P(GRelationPropertyTest, HoareOrderIsPartialOrderOnCochains) {
  dbpl::testing::Rng rng(GetParam() * 19);
  std::vector<GRelation> rels;
  for (int k = 0; k < 8; ++k) {
    GRelation r;
    for (int i = 0; i < 6; ++i) r.Insert(dbpl::testing::RandomRecord(rng));
    rels.push_back(std::move(r));
  }
  for (const auto& a : rels) {
    EXPECT_TRUE(GRelation::LessEqHoare(a, a));
    for (const auto& b : rels) {
      if (GRelation::LessEqHoare(a, b) && GRelation::LessEqHoare(b, a)) {
        EXPECT_EQ(a, b);
      }
      for (const auto& c : rels) {
        if (GRelation::LessEqHoare(a, b) && GRelation::LessEqHoare(b, c)) {
          EXPECT_TRUE(GRelation::LessEqHoare(a, c));
        }
      }
    }
  }
}

TEST_P(GRelationPropertyTest, ProjectionAndMergeMonotoneUnderHoare) {
  // The paper: "from a slightly different ordering on relations a
  // projection operator can be defined". Projection and Merge are
  // monotone with respect to the Hoare ordering.
  dbpl::testing::Rng rng(GetParam() * 23);
  for (int round = 0; round < 10; ++round) {
    GRelation r;
    for (int i = 0; i < 6; ++i) r.Insert(dbpl::testing::RandomRecord(rng));
    // Build a Hoare-refinement of r by adding fields to some objects
    // and appending new ones.
    GRelation refined = r;
    for (const Value& o : r.objects()) {
      if (rng.Coin()) {
        refined.Insert(o.WithField("Extra", Value::Int(
                                               static_cast<int64_t>(
                                                   rng.Below(5)))));
      }
    }
    refined.Insert(dbpl::testing::RandomRecord(rng));
    ASSERT_TRUE(GRelation::LessEqHoare(r, refined));

    EXPECT_TRUE(GRelation::LessEqHoare(*r.Project({"Name", "Dept"}),
                                       *refined.Project({"Name", "Dept"})));
    GRelation other;
    for (int i = 0; i < 4; ++i) other.Insert(dbpl::testing::RandomRecord(rng));
    EXPECT_TRUE(GRelation::LessEqHoare(GRelation::Merge(r, other),
                                       GRelation::Merge(refined, other)));
  }
}

TEST_P(GRelationPropertyTest, RelationOrderIsPartialOrderOnCochains) {
  dbpl::testing::Rng rng(GetParam() * 13);
  std::vector<GRelation> rels;
  for (int k = 0; k < 8; ++k) {
    GRelation r;
    for (int i = 0; i < 6; ++i) r.Insert(dbpl::testing::RandomRecord(rng));
    rels.push_back(std::move(r));
  }
  for (const auto& a : rels) {
    EXPECT_TRUE(GRelation::LessEq(a, a));
    for (const auto& b : rels) {
      if (GRelation::LessEq(a, b) && GRelation::LessEq(b, a)) {
        EXPECT_EQ(a, b);
      }
      for (const auto& c : rels) {
        if (GRelation::LessEq(a, b) && GRelation::LessEq(b, c)) {
          EXPECT_TRUE(GRelation::LessEq(a, c));
        }
      }
    }
  }
}

}  // namespace
}  // namespace dbpl::core
