#ifndef DBPL_TESTS_TEST_UTIL_H_
#define DBPL_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/order.h"
#include "core/value.h"
#include "types/type.h"

namespace dbpl::testing {

/// Reduces `vs` to an antichain under the information order by dropping
/// any element strictly above another. Generated set values must be
/// antichains for `⊑` to be a partial order on them (the paper considers
/// only such sets as relations).
inline std::vector<core::Value> MinReduceForTest(std::vector<core::Value> vs) {
  std::vector<core::Value> out;
  for (const auto& v : vs) {
    bool dominated = false;
    for (const auto& w : vs) {
      if (!(v == w) && core::LessEq(w, v)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(v);
  }
  return out;
}

/// Deterministic xorshift PRNG so property tests are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  /// Uniform integer in [0, bound).
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  bool Coin() { return Next() & 1; }

 private:
  uint64_t state_;
};

/// Generates a pseudo-random value with nesting `depth`. The atom pools
/// are deliberately tiny so generated values are frequently comparable
/// and joinable — otherwise ordering properties would be vacuous.
inline core::Value RandomValue(Rng& rng, int depth) {
  static const char* kNames[] = {"a", "b", "c", "d"};
  static const char* kStrings[] = {"x", "y"};
  int pick = depth <= 0 ? static_cast<int>(rng.Below(4))
                        : static_cast<int>(rng.Below(8));
  switch (pick) {
    case 0:
      return core::Value::Bottom();
    case 1:
      return core::Value::Int(static_cast<int64_t>(rng.Below(3)));
    case 2:
      return core::Value::String(kStrings[rng.Below(2)]);
    case 3:
      return core::Value::Bool(rng.Coin());
    case 4: {  // record
      std::vector<core::Value::RecordField> fields;
      size_t n = rng.Below(4);
      for (size_t i = 0; i < 4 && fields.size() < n; ++i) {
        if (rng.Coin()) {
          fields.push_back({kNames[i], RandomValue(rng, depth - 1)});
        }
      }
      return core::Value::RecordOf(std::move(fields));
    }
    case 5: {  // set (reduced to an antichain; see MinReduceForTest)
      std::vector<core::Value> elems;
      size_t n = rng.Below(3);
      for (size_t i = 0; i < n; ++i) elems.push_back(RandomValue(rng, depth - 1));
      return core::Value::Set(MinReduceForTest(std::move(elems)));
    }
    case 6: {  // list
      std::vector<core::Value> elems;
      size_t n = rng.Below(3);
      for (size_t i = 0; i < n; ++i) elems.push_back(RandomValue(rng, depth - 1));
      return core::Value::List(std::move(elems));
    }
    default:  // tagged (variant inhabitant)
      return core::Value::Tagged(rng.Coin() ? "ok" : "err",
                                 RandomValue(rng, depth - 1));
  }
}

/// A corpus of pseudo-random values for property tests.
inline std::vector<core::Value> Corpus(uint64_t seed, size_t n, int depth) {
  Rng rng(seed);
  std::vector<core::Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(RandomValue(rng, depth));
  return out;
}

/// Generates a pseudo-random *record* value (flat or nested one level),
/// useful for relation tests.
inline core::Value RandomRecord(Rng& rng) {
  static const char* kNames[] = {"Name", "Dept", "Age", "Addr"};
  std::vector<core::Value::RecordField> fields;
  for (const char* name : kNames) {
    if (!rng.Coin()) continue;
    if (std::string(name) == "Addr") {
      std::vector<core::Value::RecordField> inner;
      if (rng.Coin()) {
        inner.push_back(
            {"City", core::Value::String(rng.Coin() ? "Moose" : "Austin")});
      }
      if (rng.Coin()) {
        inner.push_back(
            {"State", core::Value::String(rng.Coin() ? "WY" : "MT")});
      }
      fields.push_back({name, core::Value::RecordOf(std::move(inner))});
    } else if (std::string(name) == "Age") {
      fields.push_back({name, core::Value::Int(static_cast<int64_t>(
                                  20 + rng.Below(3)))});
    } else {
      fields.push_back(
          {name, core::Value::String(std::string(1, 'A' + static_cast<char>(
                                                         rng.Below(3))))});
    }
  }
  return core::Value::RecordOf(std::move(fields));
}

/// A random partial record over attribute pool {A, B, C, D}, each
/// attribute present with probability 1/2. A present attribute's value
/// is ⊥ with probability `bottom_pct`/100, a nested record with
/// probability 1/4 (when `nested`), and a small-domain atom otherwise —
/// small domains keep pairs frequently consistent, so join paths are
/// all exercised.
inline core::Value RandomPartialRecord(Rng& rng, int bottom_pct, bool nested) {
  static const char* kNames[] = {"A", "B", "C", "D"};
  std::vector<core::Value::RecordField> fields;
  for (const char* name : kNames) {
    if (!rng.Coin()) continue;
    core::Value v;
    if (rng.Below(100) < static_cast<uint64_t>(bottom_pct)) {
      v = core::Value::Bottom();
    } else if (nested && rng.Below(4) == 0) {
      std::vector<core::Value::RecordField> inner;
      if (rng.Coin()) {
        inner.push_back(
            {"x", core::Value::Int(static_cast<int64_t>(rng.Below(2)))});
      }
      if (rng.Coin()) {
        inner.push_back({"y", core::Value::String(rng.Coin() ? "p" : "q")});
      }
      v = core::Value::RecordOf(std::move(inner));
    } else {
      v = core::Value::Int(static_cast<int64_t>(rng.Below(3)));
    }
    fields.push_back({name, std::move(v)});
  }
  return core::Value::RecordOf(std::move(fields));
}

inline std::vector<core::Value> RecordCorpus(Rng& rng, size_t n, int bottom_pct,
                                             bool nested) {
  std::vector<core::Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(RandomPartialRecord(rng, bottom_pct, nested));
  }
  return out;
}

/// Generates a pseudo-random structural type with nesting `depth`.
/// Quantifiers are excluded (their kernel subtyping rules make the
/// algebraic property tests subtler than the corpus warrants); Mu
/// appears in a simple self-referential record pattern.
inline types::Type RandomType(Rng& rng, int depth) {
  using types::Type;
  static const char* kLabels[] = {"a", "b", "c", "d"};
  int pick = depth <= 0 ? static_cast<int>(rng.Below(5))
                        : static_cast<int>(5 + rng.Below(6));
  switch (pick) {
    case 0:
      return Type::Int();
    case 1:
      return Type::String();
    case 2:
      return Type::Bool();
    case 3:
      return Type::Top();
    case 4:
      return Type::Bottom();
    case 5: {  // record
      std::vector<std::pair<std::string, Type>> fields;
      for (const char* label : kLabels) {
        if (rng.Coin()) fields.emplace_back(label, RandomType(rng, depth - 1));
      }
      return Type::RecordOf(std::move(fields));
    }
    case 6: {  // variant
      std::vector<std::pair<std::string, Type>> tags;
      size_t n = 1 + rng.Below(3);
      for (size_t i = 0; i < n; ++i) {
        tags.emplace_back(kLabels[i], RandomType(rng, depth - 1));
      }
      return Type::VariantOf(std::move(tags));
    }
    case 7:
      return Type::List(RandomType(rng, depth - 1));
    case 8:
      return Type::Set(RandomType(rng, depth - 1));
    case 9: {  // function
      std::vector<Type> params;
      size_t n = rng.Below(3);
      for (size_t i = 0; i < n; ++i) params.push_back(RandomType(rng, depth - 1));
      return Type::Func(std::move(params), RandomType(rng, depth - 1));
    }
    default:  // simple recursive record
      return Type::Mu("x", Type::RecordOf(
                               {{"next", Type::Var("x")},
                                {"val", RandomType(rng, depth - 1)}}));
  }
}

inline std::vector<types::Type> TypeCorpus(uint64_t seed, size_t n,
                                           int depth) {
  Rng rng(seed);
  std::vector<types::Type> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(RandomType(rng, depth));
  return out;
}

}  // namespace dbpl::testing

#endif  // DBPL_TESTS_TEST_UTIL_H_
