#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "lang/interp.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/typecheck.h"

namespace dbpl::lang {
namespace {

std::string TempDir(const std::string& name) {
  return ::testing::TempDir() + "/dbpl_lang_" + name + "_" +
         std::to_string(::getpid());
}

/// Runs a program and returns the values of its expression statements.
Result<std::vector<std::string>> RunValues(const std::string& src) {
  Interp interp;
  Result<Interp::Output> out = interp.Run(src);
  if (!out.ok()) return out.status();
  return out->values;
}

void ExpectOutputs(const std::string& src,
                   const std::vector<std::string>& expected) {
  Result<std::vector<std::string>> out = RunValues(src);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, expected) << src;
}

void ExpectStaticError(const std::string& src, StatusCode code) {
  Result<std::vector<std::string>> out = RunValues(src);
  ASSERT_FALSE(out.ok()) << src;
  EXPECT_EQ(out.status().code(), code) << out.status();
}

// ---------------------------------------------------------------------
// Lexer / parser
// ---------------------------------------------------------------------

TEST(LexerTest, TokenizesProgramFragment) {
  auto tokens = Lex("let d = dynamic 3; -- comment\nd;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 7u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLet);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kAssign);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kDynamic);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEof);
}

TEST(LexerTest, StringsAndEscapes) {
  auto tokens = Lex("\"a\\nb\" 'J Doe'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a\nb");
  EXPECT_EQ((*tokens)[1].text, "J Doe");
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("\"bad \\q escape\"").ok());
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Lex("let\nx");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].span.line, 1);
  EXPECT_EQ((*tokens)[1].span.line, 2);
}

TEST(ParserTest, RejectsMalformedPrograms) {
  EXPECT_FALSE(Parse("let = 3;").ok());
  EXPECT_FALSE(Parse("let x = ;").ok());
  EXPECT_FALSE(Parse("3 +;").ok());
  EXPECT_FALSE(Parse("{a = 1").ok());
  EXPECT_FALSE(Parse("let x = 3").ok());  // missing semicolon
  EXPECT_FALSE(Parse("type T = {x: Unknown};").ok());
  EXPECT_FALSE(Parse("type T = Int; type T = Bool;").ok());
}

// ---------------------------------------------------------------------
// The paper's Amber fragments, verbatim (modulo surface syntax).
// ---------------------------------------------------------------------

TEST(PaperTest, DynamicCoerceExample) {
  // let d = dynamic 3; let i = coerce d to Int  -- i = 3
  ExpectOutputs(R"(
    let d = dynamic 3;
    let i = coerce d to Int;
    i;
  )",
                {"3"});
  // let s = coerce d to String  -- raises a run-time exception
  ExpectStaticError(R"(
    let d = dynamic 3;
    coerce d to String;
  )",
                    StatusCode::kTypeError);
  // Using an integer operation on d directly is a *static* type error.
  ExpectStaticError("let d = dynamic 3; d + 1;", StatusCode::kTypeError);
}

TEST(PaperTest, TypeofRevealsCarriedType) {
  ExpectOutputs(R"(
    let d = dynamic {Name = "J Doe"};
    typeof d;
  )",
                {"\"{Name: String}\""});
}

TEST(PaperTest, EmployeeIsInferredSubtypeOfPerson) {
  // Amber: "it would still be inferred, from the structure of the
  // definition, that Employee is a subtype of Person".
  ExpectOutputs(R"(
    type Person = {Name: String, Address: {City: String}};
    type Employee = {Name: String, Address: {City: String},
                     Empno: Int, Dept: String};
    let e : Employee = {Name = "J Doe", Address = {City = "Austin"},
                        Empno = 1234, Dept = "Sales"};
    let p : Person = e;    -- subsumption
    p.Name;
  )",
                {"\"J Doe\""});
  // The converse requires information the value lacks.
  ExpectStaticError(R"(
    type Person = {Name: String};
    type Employee = {Name: String, Empno: Int};
    let p : Person = {Name = "J Doe"};
    let e : Employee = p;
  )",
                    StatusCode::kTypeError);
}

TEST(PaperTest, GenericGetDerivesExtents) {
  // The database is a list of dynamics; Get[Employee] extracts every
  // value whose type is a subtype of Employee.
  ExpectOutputs(R"(
    type Person = {Name: String};
    type Employee = {Name: String, Empno: Int};
    let db = database;
    insert {Name = "p1"} into db;
    insert {Name = "e1", Empno = 1} into db;
    insert {Name = "e2", Empno = 2} into db;
    insert 42 into db;
    length(get Person from db);
    length(get Employee from db);
    length(get Int from db);
  )",
                {"3", "2", "1"});
}

TEST(PaperTest, GetResultIsTypedExistentially) {
  Interp interp;
  auto out = interp.Run(R"(
    type Person = {Name: String};
    let db = database;
    insert {Name = "e", Empno = 1} into db;
    get Person from db;
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->types.size(), 1u);
  EXPECT_EQ(out->types[0], "List[Exists t <= {Name: String}. t]");
}

TEST(PaperTest, GetExtentContainment) {
  // getPersons always returns a larger list than getEmployees, and
  // fields guaranteed by the bound are accessible on the results.
  ExpectOutputs(R"(
    type Person = {Name: String};
    type Employee = {Name: String, Empno: Int};
    let db = database;
    insert {Name = "p"} into db;
    insert {Name = "e", Empno = 7} into db;
    let persons = get Person from db;
    let employees = get Employee from db;
    length(persons) >= length(employees);
    map(fun (p: Person) : String => p.Name, persons);
  )",
                {"true", "[\"p\", \"e\"]"});
}

TEST(PaperTest, RecordJoinExample) {
  // {Name='J Doe'} ⊔ {Emp_no=1234}, and the o2 ⊔ o3 example.
  ExpectOutputs(R"(
    let a = {Name = "J Doe"} join {Emp_no = 1234};
    a;
    let o2 = {Name = "J Doe", Address = {City = "Austin"}, Emp_no = 1234};
    let o3 = {Name = "J Doe", Address = {City = "Austin", Zip = 78759}};
    o2 join o3;
  )",
                {"{Emp_no = 1234, Name = \"J Doe\"}",
                 "{Address = {City = \"Austin\", Zip = 78759}, "
                 "Emp_no = 1234, Name = \"J Doe\"}"});
}

TEST(PaperTest, JoinOfContradictoryRecordsFails) {
  // Statically contradictory: {Name: String-valued "J Doe"} vs Int.
  ExpectStaticError("{Name = \"J Doe\"} join {Name = 3};",
                    StatusCode::kTypeError);
  // Type-compatible but value-contradictory: a run-time Inconsistent.
  Result<std::vector<std::string>> out =
      RunValues("{Name = \"J Doe\"} join {Name = \"K Smith\"};");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInconsistent);
}

TEST(PaperTest, ExternInternRoundTrip) {
  std::string dir = TempDir("externintern");
  {
    Interp writer(dir);
    auto out = writer.Run(R"(
      type DB = List[{Name: String}];
      let d : DB = [{Name = "Alice"}, {Name = "Bob"}];
      extern d as "DBFile";
    )");
    ASSERT_TRUE(out.ok()) << out.status();
  }
  {
    Interp reader(dir);
    auto out = reader.Run(R"(
      type DB = List[{Name: String}];
      let x = intern "DBFile";
      let d = coerce x to DB;
      length(d);
      head(d).Name;
    )");
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(out->values, (std::vector<std::string>{"2", "\"Alice\""}));
  }
  {
    // Coercing the handle to the wrong type fails, per the paper.
    Interp reader(dir);
    auto out = reader.Run(R"(
      let x = intern "DBFile";
      coerce x to Int;
    )");
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kTypeError);
  }
}

TEST(PaperTest, BillOfMaterialsTotalCost) {
  // The paper's TotalCost function over a parts hierarchy (recursive
  // program over a DAG-shaped value).
  ExpectOutputs(R"(
    type Component = {SubPart: {IsBase: Bool, PurchasePrice: Real,
                                ManufCost: Real,
                                Components: List[{Qty: Real}]},
                      Qty: Real};
    let bolt = {IsBase = true, PurchasePrice = 0.5, ManufCost = 0.0,
                Components = []};
    let plate = {IsBase = true, PurchasePrice = 2.0, ManufCost = 0.0,
                 Components = []};
    let rec totalCost(p: {IsBase: Bool, PurchasePrice: Real,
                          ManufCost: Real}) : Real =
      if p.IsBase then p.PurchasePrice else p.ManufCost;
    totalCost(bolt) + totalCost(plate);
  )",
                {"2.5"});
}

TEST(PaperTest, RecursiveTotalCostOverComponents) {
  // Full recursive version with fold over the component list. The
  // sub-assembly uses each part more than once (the DAG case).
  ExpectOutputs(R"(
    type Part = {IsBase: Bool, PurchasePrice: Real, ManufCost: Real,
                 Components: List[{SubPart: {IsBase: Bool,
                                             PurchasePrice: Real,
                                             ManufCost: Real,
                                             Components: List[Bottom]},
                                   Qty: Real}]};
    let bolt = {IsBase = true, PurchasePrice = 0.5, ManufCost = 0.0,
                Components = []};
    let nut  = {IsBase = true, PurchasePrice = 0.25, ManufCost = 0.0,
                Components = []};
    let rec totalCost(p: Part) : Real =
      if p.IsBase then p.PurchasePrice
      else p.ManufCost +
           sum(map(fun (q: {SubPart: {IsBase: Bool, PurchasePrice: Real,
                                      ManufCost: Real,
                                      Components: List[Bottom]},
                            Qty: Real}) : Real =>
                     q.Qty * totalCost(q.SubPart),
                   p.Components));
    let clamp = {IsBase = false, PurchasePrice = 0.0, ManufCost = 1.0,
                 Components = [{SubPart = bolt, Qty = 4.0},
                               {SubPart = nut, Qty = 4.0}]};
    totalCost(clamp);
  )",
                {"4"});
}

// ---------------------------------------------------------------------
// Language semantics beyond the paper fragments.
// ---------------------------------------------------------------------

TEST(LangTest, ArithmeticAndPrecedence) {
  ExpectOutputs("1 + 2 * 3;", {"7"});
  ExpectOutputs("(1 + 2) * 3;", {"9"});
  ExpectOutputs("10 / 3;", {"3"});
  ExpectOutputs("1.5 + 2.25;", {"3.75"});
  ExpectOutputs("\"foo\" + \"bar\";", {"\"foobar\""});
  ExpectOutputs("-3 + 1;", {"-2"});
  ExpectOutputs("1 < 2 and not (2 < 1);", {"true"});
  ExpectOutputs("false or 3 == 3;", {"true"});
}

TEST(LangTest, MixedArithmeticIsAStaticError) {
  ExpectStaticError("1 + 2.0;", StatusCode::kTypeError);
  ExpectStaticError("\"a\" + 1;", StatusCode::kTypeError);
  ExpectStaticError("1 < \"a\";", StatusCode::kTypeError);
  ExpectStaticError("if 1 then 2 else 3;", StatusCode::kTypeError);
  ExpectStaticError("not 3;", StatusCode::kTypeError);
}

TEST(LangTest, DivisionByZeroIsRuntimeError) {
  Result<std::vector<std::string>> out = RunValues("1 / 0;");
  ASSERT_FALSE(out.ok());
}

TEST(LangTest, LetInAndShadowing) {
  ExpectOutputs("let x = 1 in let x = x + 1 in x * 10;", {"20"});
  ExpectStaticError("y + 1;", StatusCode::kTypeError);
}

TEST(LangTest, FunctionsAndHigherOrder) {
  ExpectOutputs(R"(
    let inc = fun (x: Int) : Int => x + 1;
    let twice = fun (f: Int -> Int, x: Int) : Int => f(f(x));
    twice(inc, 40);
  )",
                {"42"});
  ExpectStaticError("let f = fun (x: Int) : Int => x; f(true);",
                    StatusCode::kTypeError);
  ExpectStaticError("let f = fun (x: Int) : Bool => x;",
                    StatusCode::kTypeError);
}

TEST(LangTest, FunctionSubtypingAtCallSites) {
  // A function on Persons accepts an Employee argument.
  ExpectOutputs(R"(
    let name = fun (p: {Name: String}) : String => p.Name;
    name({Name = "J Doe", Empno = 1});
  )",
                {"\"J Doe\""});
}

TEST(LangTest, RecursionFactorial) {
  ExpectOutputs(R"(
    let rec fact(n: Int) : Int = if n <= 1 then 1 else n * fact(n - 1);
    fact(10);
  )",
                {"3628800"});
}

TEST(LangTest, ListBuiltins) {
  ExpectOutputs("head([1, 2, 3]);", {"1"});
  ExpectOutputs("tail([1, 2, 3]);", {"[2, 3]"});
  ExpectOutputs("cons(0, [1]);", {"[0, 1]"});
  ExpectOutputs("length([]);", {"0"});
  ExpectOutputs("isempty([]);", {"true"});
  ExpectOutputs("nth([10, 20], 1);", {"20"});
  ExpectOutputs("sum([1, 2, 3]);", {"6"});
  ExpectOutputs("sum([1.5, 2.5]);", {"4"});
  ExpectOutputs("concat([1], [2, 3]);", {"[1, 2, 3]"});
  ExpectOutputs("map(fun (x: Int) : Int => x * x, [1, 2, 3]);",
                {"[1, 4, 9]"});
  ExpectOutputs("filter(fun (x: Int) : Bool => x > 1, [1, 2, 3]);",
                {"[2, 3]"});
  ExpectOutputs(
      "fold(fun (a: Int, b: Int) : Int => a + b, 100, [1, 2, 3]);",
      {"106"});
  Result<std::vector<std::string>> out = RunValues("head([]);");
  ASSERT_FALSE(out.ok());  // runtime error, typed List[Bottom]
}

TEST(LangTest, SetsDeduplicateAndConvert) {
  ExpectOutputs("{| 3, 1, 3, 2 |};", {"{|1, 2, 3|}"});
  ExpectOutputs("length({| 1, 1, 2 |});", {"2"});
  ExpectOutputs("elements({| 2, 1 |});", {"[1, 2]"});
  ExpectOutputs("setof([1, 1, 2]);", {"{|1, 2|}"});
  ExpectOutputs("{| {Name = \"a\"} |} join {| {Dept = \"d\"} |};",
                {"{|{Dept = \"d\", Name = \"a\"}|}"});
}

TEST(LangTest, InconsistentSetJoinIsStaticallyEmptyNotAnError) {
  // A set join over element types with meet ⊥ is still well-typed
  // (the result, always {| |}, inhabits Set[Bottom]); the lint pass
  // DL003 warns about it instead of the checker rejecting it. Record
  // joins with contradictory types remain hard type errors.
  ExpectOutputs("{| 1, 2 |} join {| \"a\" |};", {"{||}"});
  ExpectStaticError("{Name = \"x\"} join {Name = 1};", StatusCode::kTypeError);
}

TEST(LangTest, BuiltinsAreNotFirstClass) {
  ExpectStaticError("let h = head;", StatusCode::kTypeError);
}

TEST(LangTest, IfBranchesLub) {
  // Lub of Employee and Student is their common structure.
  ExpectOutputs(R"(
    let v = if true then {Name = "a", Empno = 1}
            else {Name = "b", StudentId = 2};
    v.Name;
  )",
                {"\"a\""});
  ExpectStaticError(R"(
    let v = if true then {Name = "a", Empno = 1}
            else {Name = "b", StudentId = 2};
    v.Empno;
  )",
                    StatusCode::kTypeError);
}

TEST(LangTest, InsertRequiresDatabase) {
  ExpectStaticError("insert 1 into 2;", StatusCode::kTypeError);
  ExpectStaticError("get Int from 2;", StatusCode::kTypeError);
}

TEST(LangTest, DatabaseIsSharedAndMutable) {
  ExpectOutputs(R"(
    let db = database;
    let alias = db;
    insert 1 into alias;
    insert 2 into db;
    length(get Int from db);
  )",
                {"2"});
}

TEST(LangTest, DynamicCarriesStaticType) {
  // The dynamic carries the *static* type of its operand: an Employee
  // value declared as a Person is retrieved by Get[Person] but not
  // Get[Employee] — the declaration, not the representation, governs.
  ExpectOutputs(R"(
    type Person = {Name: String};
    type Employee = {Name: String, Empno: Int};
    let e : Person = {Name = "x", Empno = 1};
    let db = database;
    insert e into db;
    length(get Person from db);
    length(get Employee from db);
  )",
                {"1", "0"});
}

TEST(LangTest, IncrementalRunsShareGlobals) {
  Interp interp;
  ASSERT_TRUE(interp.RunIncremental("let x = 40;").ok());
  auto out = interp.RunIncremental("x + 2;");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->values, (std::vector<std::string>{"42"}));
}

TEST(LangTest, GlobalLookup) {
  Interp interp;
  ASSERT_TRUE(interp.Run("let x = {A = 1};").ok());
  auto v = interp.Global("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), "{A = 1}");
  EXPECT_FALSE(interp.Global("nope").ok());
}

TEST(LangTest, VariantConstructionAndCase) {
  ExpectOutputs(R"(
    let classify = fun (r: <ok: Int | err: String>) : String =>
      case r of ok(n) => "fine" | err(msg) => msg end;
    classify(<ok = 3>);
    classify(<err = "boom">);
  )",
                {"\"fine\"", "\"boom\""});
  // The payload is bound in the arm.
  ExpectOutputs(R"(
    case <ok = 41> of ok(n) => n + 1 end;
  )",
                {"42"});
}

TEST(LangTest, CaseIsExhaustivenessChecked) {
  // Missing arm: static error.
  ExpectStaticError(R"(
    let f = fun (r: <ok: Int | err: String>) : Int =>
      case r of ok(n) => n end;
  )",
                    StatusCode::kTypeError);
  // Unknown arm: static error.
  ExpectStaticError("case <ok = 1> of ok(n) => n | bogus(x) => 0 end;",
                    StatusCode::kTypeError);
  // Duplicate arm: static error.
  ExpectStaticError("case <ok = 1> of ok(n) => n | ok(m) => m end;",
                    StatusCode::kTypeError);
  // Non-variant scrutinee: static error.
  ExpectStaticError("case 3 of ok(n) => n end;", StatusCode::kTypeError);
}

TEST(LangTest, VariantSubsumption) {
  // <ok = 3> : <ok: Int> ≤ <ok: Int | err: String>.
  ExpectOutputs(R"(
    let r : <ok: Int | err: String> = <ok = 3>;
    case r of ok(n) => n | err(s) => 0 end;
  )",
                {"3"});
}

TEST(LangTest, RecursiveVariantListViaCase) {
  // An IntList as an equi-recursive variant (Mu type), consumed by
  // recursion + case — the full Cardelli-style list encoding.
  ExpectOutputs(R"(
    type IntList = Mu l. <nil: {} | cons: {head: Int, tail: l}>;
    let empty : IntList = <nil = {}>;
    let l2 : IntList = <cons = {head = 2, tail = empty}>;
    let l12 : IntList = <cons = {head = 1, tail = l2}>;
    let rec total(l: IntList) : Int =
      case l of
        nil(u) => 0
      | cons(c) => c.head + total(c.tail)
      end;
    total(l12);
  )",
                {"3"});
}

TEST(LangTest, InformationOrderingBuiltins) {
  // The paper's ⊑, consistency and ⊓, reachable from programs.
  ExpectOutputs("lesseq({Name = \"J\"}, {Name = \"J\", Empno = 1});",
                {"true"});
  ExpectOutputs("lesseq({Name = \"J\", Empno = 1}, {Name = \"J\"});",
                {"false"});
  ExpectOutputs("consistent({Name = \"J\"}, {Empno = 1});", {"true"});
  ExpectOutputs("consistent({Name = \"J\"}, {Name = \"K\"});", {"false"});
  ExpectOutputs("meet({Name = \"J\", Empno = 1}, {Name = \"J\", Dept = \"S\"});",
                {"{Name = \"J\"}"});
  ExpectStaticError("lesseq(1, 2, 3);", StatusCode::kTypeError);
}

TEST(LangTest, ExternWithoutStoreFails) {
  Interp interp;  // no persist dir
  auto out = interp.Run("extern 1 as \"h\";");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace dbpl::lang
