// Differential tests for the sharded entry log: a K-sharded
// dyndb::Database (and its WAL/replica stack) must be observationally
// equivalent to the single-shard one on every read path — same entries,
// same Get results under every strategy, same joins, same recovery,
// same replication — differing only in id encoding and enumeration
// interleaving (both of which are specified, and checked here too).

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/value.h"
#include "dyndb/database.h"
#include "persist/database_io.h"
#include "persist/replica.h"
#include "persist/wal_database.h"
#include "serial/encoder.h"
#include "storage/fault_vfs.h"
#include "test_util.h"
#include "types/parse.h"
#include "types/type_of.h"

namespace dbpl::dyndb {
namespace {

using core::Value;
using persist::CommitPolicy;
using persist::Replica;
using persist::WalDatabase;
using persist::WalOptions;
using storage::FaultVfs;

/// Total order on values via their canonical serialized form, so
/// result sets can be compared as multisets.
std::string Fingerprint(const Value& v) {
  ByteBuffer buf;
  serial::EncodeValue(v, &buf);
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

std::vector<std::string> Sorted(const std::vector<Value>& vs) {
  std::vector<std::string> out;
  out.reserve(vs.size());
  for (const Value& v : vs) out.push_back(Fingerprint(v));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> SortedEntries(const Database& db) {
  std::vector<std::string> out;
  db.GetSnapshot().ForEachEntry(
      [&](Database::EntryId, const Dynamic& d) {
        out.push_back(Fingerprint(d.value));
      });
  std::sort(out.begin(), out.end());
  return out;
}

/// The exact (id -> value) map, for paths that must preserve ids
/// (checkpoint round-trips, replication).
std::map<Database::EntryId, std::string> IdMap(const Database& db) {
  std::map<Database::EntryId, std::string> out;
  db.GetSnapshot().ForEachEntry(
      [&](Database::EntryId id, const Dynamic& d) {
        out[id] = Fingerprint(d.value);
      });
  return out;
}

types::Type NameT() { return *types::ParseType("{Name: String}"); }
types::Type AgeT() { return *types::ParseType("{Age: Int}"); }

TEST(ShardedIdTest, EncodingRoundTrips) {
  for (int k : {1, 2, 3, 7, Database::kMaxShards}) {
    for (uint64_t seq = 0; seq < 5; ++seq) {
      for (int s = 0; s < k; ++s) {
        const Database::EntryId id =
            seq * static_cast<uint64_t>(k) + static_cast<uint64_t>(s);
        EXPECT_EQ(Database::ShardOfId(id, k), s);
        EXPECT_EQ(Database::SeqOfId(id, k), seq);
      }
    }
  }
}

TEST(ShardedIdTest, SingleShardIdsStayDense) {
  Database db;  // default: one shard
  EXPECT_EQ(db.shards(), 1);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(db.MustInsertValue(Value::Int(static_cast<int64_t>(i))), i);
  }
}

TEST(ShardedIdTest, ShardedIdsEncodeTheirShardAndResolve) {
  Database db(DatabaseOptions{4});
  EXPECT_EQ(db.shards(), 4);
  std::set<Database::EntryId> ids;
  for (int i = 0; i < 64; ++i) {
    Value v = Value::Int(i);
    const Database::EntryId id = db.MustInsertValue(v);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
    auto got = db.Get(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->value, v);
  }
  EXPECT_EQ(db.size(), 64u);
  // Each shard's visible sequence is dense: ids seq*K+s for seq below
  // the shard size all resolve, the next one does not.
  const Database::Snapshot snap = db.GetSnapshot();
  size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    const size_t n = snap.shard_size(s);
    total += n;
    for (uint64_t seq = 0; seq < n; ++seq) {
      EXPECT_TRUE(snap.Get(seq * 4 + static_cast<uint64_t>(s)).ok());
    }
    EXPECT_FALSE(snap.Get(n * 4 + static_cast<uint64_t>(s)).ok());
  }
  EXPECT_EQ(total, 64u);
}

TEST(ShardedIdTest, InsertAtValidatesTheShardSequence) {
  Database db(DatabaseOptions{3});
  // Replay ids out of shard order is fine; out of *sequence* order
  // within a shard is a gap.
  ASSERT_TRUE(db.InsertAt(2, MakeDynamic(Value::Int(2))).ok());  // shard 2
  ASSERT_TRUE(db.InsertAt(0, MakeDynamic(Value::Int(0))).ok());  // shard 0
  Status gap = db.InsertAt(4, MakeDynamic(Value::Int(4)));  // shard 1 seq 1
  EXPECT_EQ(gap.code(), StatusCode::kFailedPrecondition);
  Status dup = db.InsertAt(0, MakeDynamic(Value::Int(0)));
  EXPECT_EQ(dup.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(db.InsertAt(1, MakeDynamic(Value::Int(1))).ok());  // shard 1
  ASSERT_TRUE(db.InsertAt(4, MakeDynamic(Value::Int(4))).ok());
  EXPECT_EQ(db.size(), 4u);
  EXPECT_EQ(db.Get(4)->value, Value::Int(4));
}

TEST(ShardedDatabaseTest, EnumerationOrderIsIdOrder) {
  Database db(DatabaseOptions{5});
  for (int i = 0; i < 40; ++i) db.MustInsertValue(Value::Int(i));
  std::vector<Database::EntryId> seen;
  db.GetSnapshot().ForEachEntry(
      [&](Database::EntryId id, const Dynamic&) { seen.push_back(id); });
  ASSERT_EQ(seen.size(), 40u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

/// One randomized workload applied to both databases: inserts of
/// record-ish and arbitrary values, with extent registrations
/// interleaved at pseudo-random points.
void ApplyWorkload(uint64_t seed, int n, Database* a, Database* b) {
  testing::Rng rng(seed);
  int extents = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Below(16) == 0 && extents < 2) {
      types::Type t = extents == 0 ? NameT() : AgeT();
      const std::string name = "x" + std::to_string(extents++);
      ASSERT_TRUE(a->RegisterExtent(name, t).ok());
      ASSERT_TRUE(b->RegisterExtent(name, std::move(t)).ok());
    } else {
      Value v = rng.Coin() ? testing::RandomRecord(rng)
                           : testing::RandomValue(rng, 2);
      a->MustInsertValue(v);
      b->MustInsertValue(std::move(v));
    }
  }
}

TEST(ShardedDifferentialTest, AllReadPathsMatchSingleShard) {
  for (int k : {2, 3, 5}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE("shards " + std::to_string(k) + " seed " +
                   std::to_string(seed));
      Database one;
      Database sharded(DatabaseOptions{k});
      ApplyWorkload(seed, 120, &one, &sharded);

      EXPECT_EQ(sharded.size(), one.size());
      EXPECT_EQ(sharded.epoch(),
                // Each registration counts once per shard.
                one.size() +
                    static_cast<uint64_t>(k) * (one.epoch() - one.size()));
      EXPECT_EQ(SortedEntries(sharded), SortedEntries(one));
      EXPECT_EQ(sharded.DistinctTypeCount(), one.DistinctTypeCount());
      EXPECT_EQ(sharded.ExtentNames(), one.ExtentNames());

      // Every Get strategy, on several probe types.
      const Database::Snapshot ss = sharded.GetSnapshot();
      const Database::Snapshot os = one.GetSnapshot();
      for (const types::Type& t :
           {NameT(), AgeT(), types::Type::Top(),
            *types::ParseType("{Name: String, Dept: String}")}) {
        EXPECT_EQ(Sorted(ss.GetScan(t)), Sorted(os.GetScan(t)));
        EXPECT_EQ(Sorted(ss.GetViaIndex(t)), Sorted(os.GetViaIndex(t)));
        // Threaded scans partition differently but agree too.
        EXPECT_EQ(Sorted(ss.GetScan(t, GetOptions{3})),
                  Sorted(os.GetScan(t)));
        EXPECT_EQ(Sorted(ss.GetViaIndex(t, GetOptions{3})),
                  Sorted(os.GetViaIndex(t)));
        auto se = ss.GetViaExtent(t);
        auto oe = os.GetViaExtent(t);
        ASSERT_EQ(se.ok(), oe.ok());
        if (se.ok()) EXPECT_EQ(Sorted(*se), Sorted(*oe));
        EXPECT_EQ(Sorted(ss.GetRelation(t).objects()),
                  Sorted(os.GetRelation(t).objects()));
      }

      // Packages carry the same values (ids differ only in encoding).
      {
        std::vector<Value> sp, op;
        for (const Dynamic& d : ss.GetPackages(NameT())) sp.push_back(d.value);
        for (const Dynamic& d : os.GetPackages(NameT())) op.push_back(d.value);
        EXPECT_EQ(Sorted(sp), Sorted(op));
      }

      // Joins over extents derived from one consistent image.
      auto sj = ss.JoinExtents(NameT(), AgeT());
      auto oj = os.JoinExtents(NameT(), AgeT());
      ASSERT_EQ(sj.ok(), oj.ok());
      if (sj.ok()) EXPECT_EQ(Sorted(sj->objects()), Sorted(oj->objects()));
    }
  }
}

TEST(ShardedDifferentialTest, SnapshotSaveLoadMatches) {
  FaultVfs vfs(11);
  Database one;
  Database sharded(DatabaseOptions{4});
  ApplyWorkload(21, 80, &one, &sharded);
  // SaveSnapshot enumerates in id order; the reloaded (single-shard)
  // databases hold the same multiset either way.
  ASSERT_TRUE(persist::SaveDatabase(&vfs, "one.dbpl", one).ok());
  ASSERT_TRUE(persist::SaveDatabase(&vfs, "sharded.dbpl", sharded).ok());
  auto lone = persist::LoadDatabase(&vfs, "one.dbpl");
  auto lsharded = persist::LoadDatabase(&vfs, "sharded.dbpl");
  ASSERT_TRUE(lone.ok() && lsharded.ok());
  EXPECT_EQ(SortedEntries(*lsharded), SortedEntries(*lone));
}

TEST(ShardedCheckpointTest, V2RoundTripPreservesIdsAndGeometry) {
  FaultVfs vfs(12);
  Database db(DatabaseOptions{3});
  ASSERT_TRUE(db.RegisterExtent("names", NameT()).ok());
  testing::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    db.MustInsertValue(testing::RandomRecord(rng));
  }
  ASSERT_TRUE(
      persist::SaveCheckpoint(&vfs, "ckpt.dbpl", db.GetSnapshot()).ok());

  auto image = persist::ReadCheckpoint(&vfs, "ckpt.dbpl");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->shards, 3);
  EXPECT_EQ(image->entry_count(), 50u);
  ASSERT_EQ(image->extents.size(), 1u);
  EXPECT_EQ(image->extents[0].first, "names");

  auto loaded = persist::LoadCheckpoint(&vfs, "ckpt.dbpl");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->shards(), 3);
  EXPECT_EQ(IdMap(*loaded), IdMap(db));  // ids, not just values
  EXPECT_EQ(loaded->ExtentNames(), db.ExtentNames());
  EXPECT_EQ(loaded->epoch(), db.epoch());
}

TEST(ShardedWalTest, ShardedRecoveryMatchesSingleShard) {
  FaultVfs vfs(13);
  {
    auto one = WalDatabase::Open(&vfs, "one", CommitPolicy{2, true});
    auto sharded =
        WalDatabase::Open(&vfs, "sharded", WalOptions{{2, true}, 3});
    ASSERT_TRUE(one.ok() && sharded.ok());
    EXPECT_EQ((*sharded)->shard_count(), 3);
    testing::Rng rng(31);
    ASSERT_TRUE((*one)->RegisterExtent("names", NameT()).ok());
    ASSERT_TRUE((*sharded)->RegisterExtent("names", NameT()).ok());
    for (int i = 0; i < 40; ++i) {
      Value v = testing::RandomRecord(rng);
      ASSERT_TRUE((*one)->InsertValue(v).ok());
      ASSERT_TRUE((*sharded)->InsertValue(std::move(v)).ok());
      if (i == 25) {
        ASSERT_TRUE((*one)->Checkpoint().ok());
        ASSERT_TRUE((*sharded)->Checkpoint().ok());
      }
    }
    // Clean close: destructors flush the open batches.
  }
  // Reopen, letting the sharded directory's geometry speak for itself.
  auto one = WalDatabase::Open(&vfs, "one");
  auto sharded = WalDatabase::Open(&vfs, "sharded");
  ASSERT_TRUE(one.ok() && sharded.ok());
  EXPECT_EQ((*sharded)->db().shards(), 3);
  EXPECT_EQ(SortedEntries((*sharded)->db()), SortedEntries((*one)->db()));
  EXPECT_EQ((*sharded)->db().ExtentNames(), (*one)->db().ExtentNames());
  auto se = (*sharded)->db().GetViaExtent(NameT());
  auto oe = (*one)->db().GetViaExtent(NameT());
  ASSERT_TRUE(se.ok() && oe.ok());
  EXPECT_EQ(Sorted(*se), Sorted(*oe));
}

TEST(ShardedWalTest, PowerLossKeepsACommittedPrefixPerShard) {
  FaultVfs vfs(14);
  std::map<Database::EntryId, std::string> committed;
  {
    auto wdb = WalDatabase::Open(&vfs, "db", WalOptions{{1, true}, 4});
    ASSERT_TRUE(wdb.ok());
    testing::Rng rng(7);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE((*wdb)->InsertValue(testing::RandomRecord(rng)).ok());
    }
    committed = IdMap((*wdb)->db());
    // No clean close: simulate the process dying with the OS cache.
    vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);
  }
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  EXPECT_EQ((*wdb)->db().shards(), 4);
  // Every surviving entry is exactly what was committed at its id
  // (sync-every-1 means everything inserted was made durable).
  EXPECT_EQ(IdMap((*wdb)->db()), committed);
}

TEST(ShardedWalTest, OpenRejectsAShardMismatch) {
  FaultVfs vfs(15);
  {
    auto wdb = WalDatabase::Open(&vfs, "db", WalOptions{{1, true}, 3});
    ASSERT_TRUE(wdb.ok());
    ASSERT_TRUE((*wdb)->InsertValue(Value::Int(1)).ok());
    ASSERT_TRUE((*wdb)->Checkpoint().ok());
  }
  auto wrong = WalDatabase::Open(&vfs, "db", WalOptions{{1, true}, 2});
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
  auto fresh_as_one = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(fresh_as_one.ok());  // policy-only overload auto-adopts
  EXPECT_EQ((*fresh_as_one)->db().shards(), 3);
}

TEST(ShardedWalTest, GeometrySurvivesACrashBeforeTheFirstCheckpoint) {
  FaultVfs vfs(16);
  {
    auto wdb = WalDatabase::Open(&vfs, "db", WalOptions{{1, true}, 3});
    ASSERT_TRUE(wdb.ok());
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE((*wdb)->InsertValue(Value::Int(i)).ok());
    }
    vfs.PowerLoss(FaultVfs::UnsyncedFate::kLost);
  }
  // No checkpoint was ever taken: the wal.<s>.log segments alone must
  // tell the reopen (with no explicit shard count) the geometry.
  auto wdb = WalDatabase::Open(&vfs, "db");
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  EXPECT_EQ((*wdb)->db().shards(), 3);
  EXPECT_EQ((*wdb)->db().size(), 9u);
}

TEST(ShardedReplicaTest, FollowerConvergesAndPreservesIds) {
  FaultVfs vfs(17);
  auto primary = WalDatabase::Open(&vfs, "p", WalOptions{{2, true}, 3});
  ASSERT_TRUE(primary.ok());
  Replica follower;
  ASSERT_TRUE(follower.Attach((*primary)->shipper()).ok());
  EXPECT_EQ(follower.db().shards(), 3);  // adopted the primary's geometry

  testing::Rng rng(41);
  ASSERT_TRUE((*primary)->RegisterExtent("names", NameT()).ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          (*primary)->InsertValue(testing::RandomRecord(rng)).ok());
    }
    if (round == 2) {
      ASSERT_TRUE((*primary)->Checkpoint().ok());
    }
    ASSERT_TRUE(follower.Poll().ok());
  }
  ASSERT_TRUE((*primary)->Commit().ok());
  ASSERT_TRUE(follower.Poll().ok());

  EXPECT_EQ(follower.Epoch(), (*primary)->db().epoch());
  EXPECT_EQ(IdMap(follower.db()), IdMap((*primary)->db()));
  EXPECT_EQ(follower.db().ExtentNames(), (*primary)->db().ExtentNames());
  auto fe = follower.db().GetViaExtent(NameT());
  auto pe = (*primary)->db().GetViaExtent(NameT());
  ASSERT_TRUE(fe.ok() && pe.ok());
  EXPECT_EQ(Sorted(*fe), Sorted(*pe));
}

TEST(ShardedReplicaTest, PromotionKeepsTheShardedGeometry) {
  FaultVfs vfs(18);
  auto primary = WalDatabase::Open(&vfs, "p", WalOptions{{1, true}, 2});
  ASSERT_TRUE(primary.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*primary)->InsertValue(Value::Int(i)).ok());
  }
  Replica follower;
  ASSERT_TRUE(follower.Attach((*primary)->shipper()).ok());
  const auto replicated = IdMap(follower.db());
  ASSERT_EQ(replicated.size(), 10u);

  auto promoted = follower.PromoteToPrimary(&vfs, "q");
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ((*promoted)->db().shards(), 2);
  EXPECT_EQ(IdMap((*promoted)->db()), replicated);
  ASSERT_TRUE((*promoted)->InsertValue(Value::Int(99)).ok());
}

// ---------------------------------------------------------------------
// Concurrency (the tsan build runs these under -L tsan)
// ---------------------------------------------------------------------

TEST(ShardedConcurrencyTest, ParallelWritersKeepSnapshotsConsistent) {
  Database db(DatabaseOptions{4});
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 400;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db, w] {
      testing::Rng rng(100 + static_cast<uint64_t>(w));
      for (int i = 0; i < kPerWriter; ++i) {
        db.MustInsertValue(testing::RandomRecord(rng));
      }
    });
  }
  // A racing reader: every snapshot enumerates exactly its own size,
  // and sizes only grow.
  std::thread reader([&db] {
    size_t last = 0;
    while (last < static_cast<size_t>(kWriters) * kPerWriter) {
      const Database::Snapshot snap = db.GetSnapshot();
      size_t n = 0;
      snap.ForEachEntry([&](Database::EntryId, const Dynamic&) { ++n; });
      ASSERT_EQ(n, snap.size());
      ASSERT_GE(n, last);
      last = n;
    }
  });
  for (std::thread& t : writers) t.join();
  reader.join();
  EXPECT_EQ(db.size(), static_cast<size_t>(kWriters) * kPerWriter);
}

TEST(ShardedConcurrencyTest, RegistrationIsAtomicAcrossShards) {
  Database db(DatabaseOptions{4});
  // The writers must be bounded, not run-until-stopped: the checker
  // below walks the full extent on every snapshot, so each O(n) walk
  // buys an unbounded insert stream time to grow n — compounding over
  // 200 iterations until the walker can never catch up on a loaded
  // single-core TSan host. 2000 inserts per writer is still far more
  // churn than the registration takes to race against.
  constexpr int kPerWriter = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&db, w] {
      testing::Rng rng(300 + static_cast<uint64_t>(w));
      for (int i = 0; i < kPerWriter; ++i) {
        db.MustInsertValue(testing::RandomRecord(rng));
      }
    });
  }
  // Register mid-stream; in every snapshot where the extent is visible
  // its membership must agree with a from-scratch index walk of the
  // same snapshot — i.e. registration is atomic across all shards.
  std::thread registrar([&db] {
    ASSERT_TRUE(db.RegisterExtent("names", NameT()).ok());
  });
  for (int i = 0; i < 200; ++i) {
    const Database::Snapshot snap = db.GetSnapshot();
    auto via_extent = snap.GetViaExtent(NameT());
    if (!via_extent.ok()) continue;  // not registered yet in this snap
    EXPECT_EQ(Sorted(*via_extent), Sorted(snap.GetViaIndex(NameT())));
  }
  registrar.join();
  for (std::thread& t : writers) t.join();
  const Database::Snapshot snap = db.GetSnapshot();
  auto via_extent = snap.GetViaExtent(NameT());
  ASSERT_TRUE(via_extent.ok());
  EXPECT_EQ(Sorted(*via_extent), Sorted(snap.GetViaIndex(NameT())));
}

/// A per-test directory on the real filesystem: the sharded WAL writes
/// its lanes concurrently from several threads, which the
/// (deliberately) single-threaded FaultVfs cannot host — the stateless
/// PosixVfs can.
std::string FreshDir(const std::string& name, int shards) {
  std::string dir = ::testing::TempDir() + "/dbpl_sharded_" + name + "_" +
                    std::to_string(::getpid());
  std::remove((dir + "/wal.log").c_str());
  for (int s = 0; s < shards; ++s) {
    std::remove((dir + "/wal." + std::to_string(s) + ".log").c_str());
  }
  std::remove((dir + "/checkpoint.dbpl").c_str());
  return dir;
}

TEST(ShardedConcurrencyTest, GroupCommitRecoversEveryParallelWrite) {
  storage::Vfs* vfs = storage::Vfs::Default();
  const std::string dir = FreshDir("groupcommit", 4);
  std::map<Database::EntryId, std::string> written;
  {
    auto wdb = WalDatabase::Open(vfs, dir, WalOptions{{4, true}, 4});
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 50;
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([&wdb, t] {
        testing::Rng rng(500 + static_cast<uint64_t>(t));
        for (int i = 0; i < kPerWriter; ++i) {
          ASSERT_TRUE(
              (*wdb)->InsertValue(testing::RandomRecord(rng)).ok());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    ASSERT_TRUE((*wdb)->Commit().ok());
    EXPECT_TRUE((*wdb)->wal_status().ok());
    written = IdMap((*wdb)->db());
    ASSERT_EQ(written.size(),
              static_cast<size_t>(kWriters) * kPerWriter);
    // No clean close beyond this scope: recovery below must rebuild
    // everything from the four lane segments alone.
  }
  auto wdb = WalDatabase::Open(vfs, dir);
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  EXPECT_EQ((*wdb)->db().shards(), 4);
  EXPECT_EQ(IdMap((*wdb)->db()), written);
}

TEST(ShardedConcurrencyTest, CheckpointsRotateUnderParallelWriters) {
  storage::Vfs* vfs = storage::Vfs::Default();
  const std::string dir = FreshDir("ckptrotate", 3);
  std::map<Database::EntryId, std::string> written;
  {
    auto wdb = WalDatabase::Open(vfs, dir, WalOptions{{1, true}, 3});
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    constexpr int kWriters = 3;
    constexpr int kPerWriter = 40;
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([&wdb, t] {
        testing::Rng rng(700 + static_cast<uint64_t>(t));
        for (int i = 0; i < kPerWriter; ++i) {
          ASSERT_TRUE(
              (*wdb)->InsertValue(testing::RandomRecord(rng)).ok());
        }
      });
    }
    // Rotate all three lanes repeatedly under live traffic.
    for (int c = 0; c < 4; ++c) {
      ASSERT_TRUE((*wdb)->Checkpoint().ok());
    }
    for (std::thread& t : threads) t.join();
    ASSERT_TRUE((*wdb)->Commit().ok());
    written = IdMap((*wdb)->db());
    ASSERT_EQ(written.size(),
              static_cast<size_t>(kWriters) * kPerWriter);
  }
  auto wdb = WalDatabase::Open(vfs, dir);
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  EXPECT_EQ(IdMap((*wdb)->db()), written);
}

}  // namespace
}  // namespace dbpl::dyndb
