#include "types/type_of.h"

#include <gtest/gtest.h>

#include "core/order.h"
#include "core/value.h"
#include "test_util.h"
#include "types/subtype.h"

namespace dbpl::types {
namespace {

using core::Value;

TEST(TypeOfTest, Atoms) {
  EXPECT_EQ(TypeOf(Value::Bool(true)), Type::Bool());
  EXPECT_EQ(TypeOf(Value::Int(3)), Type::Int());
  EXPECT_EQ(TypeOf(Value::Real(3.5)), Type::Real());
  EXPECT_EQ(TypeOf(Value::String("x")), Type::String());
  EXPECT_EQ(TypeOf(Value::Ref(7)), Type::RefTo(Type::Top()));
}

TEST(TypeOfTest, BottomHasTopType) {
  // The wholly uninformative value has the wholly uninformative type.
  EXPECT_EQ(TypeOf(Value::Bottom()), Type::Top());
}

TEST(TypeOfTest, RecordsMapFieldwise) {
  Value v = Value::RecordOf(
      {{"Name", Value::String("J Doe")}, {"Age", Value::Int(40)}});
  EXPECT_EQ(TypeOf(v), Type::RecordOf({{"Name", Type::String()},
                                       {"Age", Type::Int()}}));
}

TEST(TypeOfTest, CollectionsUseLubOfElements) {
  Value homog = Value::List({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(TypeOf(homog), Type::List(Type::Int()));
  Value mixed = Value::List({Value::Int(1), Value::String("x")});
  EXPECT_EQ(TypeOf(mixed), Type::List(Type::Top()));
  EXPECT_EQ(TypeOf(Value::Set({})), Type::Set(Type::Bottom()));
  EXPECT_EQ(TypeOf(Value::List({})), Type::List(Type::Bottom()));
}

TEST(TypeOfTest, SetOfRecordsLubsToCommonStructure) {
  Value employees = Value::Set({
      Value::RecordOf({{"Name", Value::String("J Doe")},
                       {"Empno", Value::Int(1)}}),
      Value::RecordOf({{"Name", Value::String("M Dee")},
                       {"StudentId", Value::Int(2)}}),
  });
  EXPECT_EQ(TypeOf(employees),
            Type::Set(Type::RecordOf({{"Name", Type::String()}})));
}

TEST(TypeOfTest, PrincipalityOnSamples) {
  // TypeOf(v) accepts v, and is below any other structural type that
  // accepts similar records.
  Value emp = Value::RecordOf({{"Name", Value::String("J Doe")},
                               {"Empno", Value::Int(1)}});
  Type person = Type::RecordOf({{"Name", Type::String()}});
  EXPECT_TRUE(IsSubtype(TypeOf(emp), person));
}

// The paper's observation: "a more informative object appears to have a
// type that is lower in the type hierarchy". Formally:
// a ⊑ b  ⟹  TypeOf(b) ≤ TypeOf(a).
class TypeOfAntitoneTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, TypeOfAntitoneTest,
                         ::testing::Values(3, 7, 11, 19, 23));

TEST_P(TypeOfAntitoneTest, TypeOfIsAntitone) {
  auto corpus = dbpl::testing::Corpus(GetParam(), 40, 2);
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      if (core::LessEq(a, b)) {
        EXPECT_TRUE(IsSubtype(TypeOf(b), TypeOf(a)))
            << a << " ⊑ " << b << " but " << TypeOf(b) << " !≤ "
            << TypeOf(a);
      }
    }
  }
}

TEST_P(TypeOfAntitoneTest, JoinLowersType) {
  // a ⊔ b (when it exists) has a type below both TypeOf(a), TypeOf(b).
  auto corpus = dbpl::testing::Corpus(GetParam() * 13, 30, 2);
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      auto j = core::Join(a, b);
      if (!j.ok()) continue;
      EXPECT_TRUE(IsSubtype(TypeOf(*j), TypeOf(a)));
      EXPECT_TRUE(IsSubtype(TypeOf(*j), TypeOf(b)));
    }
  }
}

}  // namespace
}  // namespace dbpl::types
