// Fuzz target: serial::DecodeDynamic, the self-describing payload
// reader that recovery and WAL replay trust with on-disk bytes.
//
// The invariant under test is the decoder's contract: any byte string
// either round-trips into a Dynamic or fails with a Status — never a
// crash, overflow, or unbounded allocation. This is the P2 boundary
// (PAPER.md): values re-enter the typed world through this decoder,
// so it must be total on hostile input.
//
// See fuzz_miniamber.cc for the two build modes.

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "serial/decoder.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  dbpl::ByteReader reader(data, size);
  auto decoded = dbpl::serial::DecodeDynamic(&reader);
  volatile bool sink = decoded.ok();
  (void)sink;
  return 0;
}
