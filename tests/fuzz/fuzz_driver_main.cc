// Fallback driver for the fuzz targets on toolchains without
// -fsanitize=fuzzer (e.g. the GCC-only CI image): replays every file
// in the directories (or single files) given as arguments through
// LLVMFuzzerTestOneInput, turning the seed and crash-regression
// corpora into a deterministic regression test. With libFuzzer
// available this file is not linked — libFuzzer brings its own main.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

int RunFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "fuzz driver: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int files = 0;
  int status = 0;
  for (int i = 1; i < argc; ++i) {
    fs::path arg(argv[i]);
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const fs::directory_entry& entry : fs::directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        status |= RunFile(entry.path());
        ++files;
      }
    } else if (fs::is_regular_file(arg, ec)) {
      status |= RunFile(arg);
      ++files;
    } else {
      std::fprintf(stderr, "fuzz driver: no such input %s\n", arg.c_str());
      status = 1;
    }
  }
  std::fprintf(stderr, "fuzz driver: replayed %d inputs\n", files);
  // Zero inputs means the corpus paths are wrong — fail loudly rather
  // than green-lighting a test that exercised nothing.
  if (files == 0) status = 1;
  return status;
}
