// Fuzz target: the dbpl-serve frame and request/response decoders —
// the bytes a hostile network peer controls completely.
//
// The invariant is totality at the wire boundary: any byte string
// either parses into frames/requests or is rejected with a Status (or
// FrameStatus::kBad/kNeedMore) — never a crash, overflow, or
// length-driven allocation. InspectFrame must reject hostile length
// fields from the 8-byte header alone, before trusting them.
//
// See fuzz_miniamber.cc for the two build modes.

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // 1. The server's own parse loop: treat the input as one session's
  //    receive buffer and walk it frame by frame, decoding each
  //    CRC-valid body both ways (a type-confused peer can send a
  //    response where a request belongs and vice versa).
  size_t consumed = 0;
  while (consumed < size) {
    size_t total = 0;
    std::string error;
    dbpl::serve::FrameStatus st = dbpl::serve::InspectFrame(
        data + consumed, size - consumed, &total, &error);
    if (st != dbpl::serve::FrameStatus::kFrame) break;
    const uint8_t* body = data + consumed + dbpl::serve::kFrameHeaderBytes;
    const size_t body_len = total - dbpl::serve::kFrameHeaderBytes;
    auto req = dbpl::serve::DecodeRequest(body, body_len);
    auto resp = dbpl::serve::DecodeResponse(body, body_len);
    volatile bool sink = req.ok() || resp.ok();
    (void)sink;
    consumed += total;
  }

  // 2. The decoders on the raw input, skipping the CRC gate — the
  //    fuzzer should not need to mint checksums to reach the body
  //    parsing (and Client::Await re-validates bodies it already
  //    CRC-checked, so this path is real).
  auto req = dbpl::serve::DecodeRequest(data, size);
  auto resp = dbpl::serve::DecodeResponse(data, size);
  volatile bool sink = req.ok() || resp.ok();
  (void)sink;
  return 0;
}
