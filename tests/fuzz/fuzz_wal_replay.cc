// Fuzz target: WAL recovery — storage::LogReader's CRC framing,
// persist::DecodeWalRecord, and the full WalDatabase::Open replay —
// fed bytes that claim to be a log segment or a checkpoint.
//
// This is the other trust boundary besides the network: after a crash,
// whatever is on disk is the input, and recovery must be total on it —
// a damaged file yields a clean Status (or a truncated-tail stop),
// never a crash or runaway allocation. Exercised three ways:
//
//  1. raw LogReader framing + DecodeWalRecord on each record;
//  2. the input as <dir>/wal.log under a full WalDatabase::Open;
//  3. the input as <dir>/checkpoint.dbpl under a full Open.
//
// See fuzz_miniamber.cc for the two build modes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "persist/wal.h"
#include "persist/wal_database.h"
#include "storage/fault_vfs.h"
#include "storage/log.h"

namespace {

std::vector<uint8_t> Bytes(const uint8_t* data, size_t size) {
  return std::vector<uint8_t>(data, data + size);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using dbpl::persist::WalDatabase;
  using dbpl::persist::WalOptions;
  using dbpl::storage::FaultVfs;
  using dbpl::storage::LogReader;
  using dbpl::storage::LogRecord;

  {  // 1. Framing + record decode, no database involved.
    FaultVfs vfs(1);
    vfs.SetFileBytes("log", Bytes(data, size));
    auto reader = LogReader::Open(&vfs, "log");
    if (reader.ok()) {
      LogRecord rec;
      while (true) {
        auto has = (*reader)->Next(&rec);
        if (!has.ok() || !*has) break;
        auto redo = dbpl::persist::DecodeWalRecord(rec);
        volatile bool sink = redo.ok();
        (void)sink;
      }
    }
  }

  {  // 2. Full recovery with the input as the WAL segment.
    FaultVfs vfs(1);
    vfs.SetFileBytes("db/wal.log", Bytes(data, size));
    auto db = WalDatabase::Open(&vfs, "db", WalOptions{{1, false}, 1});
    volatile bool sink = db.ok();
    (void)sink;
  }

  {  // 3. Full recovery with the input as the checkpoint.
    FaultVfs vfs(1);
    vfs.SetFileBytes("db/checkpoint.dbpl", Bytes(data, size));
    auto db = WalDatabase::Open(&vfs, "db", WalOptions{{1, false}, 0});
    volatile bool sink = db.ok();
    (void)sink;
  }
  return 0;
}
