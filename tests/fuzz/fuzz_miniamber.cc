// Fuzz target: the MiniAmber front end (lexer + parser + analysis).
//
// The invariant under test is *total graceful rejection*: arbitrary
// bytes must produce either a Program or a front-end diagnostic —
// never a crash, hang, or sanitizer report. The analysis passes ride
// along because they run on whatever parses, which is exactly the
// hostile-input surface `dbpl_lint` exposes to users.
//
// Built two ways (tests/fuzz/CMakeLists.txt):
//  * with Clang's -fsanitize=fuzzer: a real libFuzzer binary, run as a
//    short coverage-guided smoke (`ctest -L fuzz-smoke`, -runs=512),
//    seeded from tests/lint_corpus/ and tests/fuzz/corpus/miniamber/;
//  * without libFuzzer (e.g. GCC): fuzz_driver_main.cc replays the
//    same seed + crash-regression corpora as a plain regression test.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "lang/analysis/driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view source(reinterpret_cast<const char*>(data), size);
  dbpl::lang::AnalysisDriver driver;
  dbpl::lang::AnalysisResult result = driver.Analyze(source);
  // Touch the result so the whole diagnostic path (spans, rendering
  // inputs) stays live under the optimizer.
  volatile size_t sink = result.diagnostics.size();
  (void)sink;
  return 0;
}
