#include <gtest/gtest.h>

#include "core/order.h"
#include "relational/ops.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "test_util.h"

namespace dbpl::relational {
namespace {

using core::Value;

Value S(const char* s) { return Value::String(s); }
Value I(int64_t i) { return Value::Int(i); }

Schema EmpSchema() {
  return Schema::Of({{"Name", AtomType::kString},
                     {"Dept", AtomType::kString},
                     {"Salary", AtomType::kInt}});
}

Relation EmpRelation() {
  Relation r(EmpSchema());
  EXPECT_TRUE(r.Insert({S("J Doe"), S("Sales"), I(50)}).ok());
  EXPECT_TRUE(r.Insert({S("M Dee"), S("Manuf"), I(60)}).ok());
  EXPECT_TRUE(r.Insert({S("N Bug"), S("Sales"), I(55)}).ok());
  return r;
}

TEST(SchemaTest, DuplicateAttributesRejected) {
  EXPECT_FALSE(Schema::Make({{"A", AtomType::kInt}, {"A", AtomType::kInt}})
                   .ok());
}

TEST(SchemaTest, IndexAndProjection) {
  Schema s = EmpSchema();
  EXPECT_EQ(s.IndexOf("Dept"), 1);
  EXPECT_EQ(s.IndexOf("Nope"), -1);
  auto p = s.Project({"Salary", "Name"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->attributes()[0].name, "Salary");
  EXPECT_FALSE(s.Project({"Nope"}).ok());
}

TEST(SchemaTest, JoinWithMergesAndChecksTypes) {
  Schema s1 = Schema::Of({{"A", AtomType::kInt}, {"B", AtomType::kString}});
  Schema s2 = Schema::Of({{"B", AtomType::kString}, {"C", AtomType::kBool}});
  auto j = s1.JoinWith(s2);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->arity(), 3u);
  Schema s3 = Schema::Of({{"B", AtomType::kInt}});
  EXPECT_EQ(s1.JoinWith(s3).status().code(), StatusCode::kInconsistent);
}

TEST(SchemaTest, ToTypeMatchesStructure) {
  EXPECT_EQ(EmpSchema().ToType(),
            types::Type::RecordOf({{"Name", types::Type::String()},
                                   {"Dept", types::Type::String()},
                                   {"Salary", types::Type::Int()}}));
}

TEST(RelationTest, InsertTypeChecks) {
  Relation r(EmpSchema());
  EXPECT_EQ(r.Insert({S("X"), S("Y")}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.Insert({S("X"), S("Y"), S("not-an-int")}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(r.Insert({S("X"), S("Y"), I(1)}).ok());
}

TEST(RelationTest, DuplicatesAreSilentlyAbsorbed) {
  Relation r(EmpSchema());
  ASSERT_TRUE(r.Insert({S("X"), S("Y"), I(1)}).ok());
  ASSERT_TRUE(r.Insert({S("X"), S("Y"), I(1)}).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, KeyEnforcement) {
  auto r = Relation::WithKey(EmpSchema(), {"Name"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->Insert({S("J Doe"), S("Sales"), I(50)}).ok());
  // Same key, different non-key attributes: rejected.
  EXPECT_EQ(r->Insert({S("J Doe"), S("Manuf"), I(70)}).code(),
            StatusCode::kInconsistent);
  // Exact duplicate: no-op, not a key violation.
  EXPECT_TRUE(r->Insert({S("J Doe"), S("Sales"), I(50)}).ok());
  EXPECT_EQ(r->size(), 1u);
  // Unknown key attribute rejected at construction.
  EXPECT_FALSE(Relation::WithKey(EmpSchema(), {"Nope"}).ok());
}

TEST(RelationTest, InsertRecord) {
  Relation r(EmpSchema());
  ASSERT_TRUE(r.InsertRecord(Value::RecordOf({{"Name", S("A")},
                                              {"Dept", S("B")},
                                              {"Salary", I(1)}}))
                  .ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(
      r.InsertRecord(Value::RecordOf({{"Name", S("A")}})).ok());
  EXPECT_FALSE(r.InsertRecord(I(3)).ok());
}

TEST(OpsTest, Select) {
  Relation r = EmpRelation();
  Relation sales = Select(r, [](const Relation& rel, const Tuple& t) {
    return *rel.Field(t, "Dept") == S("Sales");
  });
  EXPECT_EQ(sales.size(), 2u);
}

TEST(OpsTest, ProjectRemovesDuplicates) {
  Relation r = EmpRelation();
  auto depts = Project(r, {"Dept"});
  ASSERT_TRUE(depts.ok());
  EXPECT_EQ(depts->size(), 2u);
  EXPECT_TRUE(depts->Contains({S("Sales")}));
  EXPECT_TRUE(depts->Contains({S("Manuf")}));
}

TEST(OpsTest, NaturalJoinOnSharedAttribute) {
  Relation emp = EmpRelation();
  Relation dept(Schema::Of({{"Dept", AtomType::kString},
                            {"City", AtomType::kString}}));
  ASSERT_TRUE(dept.Insert({S("Sales"), S("Moose")}).ok());
  ASSERT_TRUE(dept.Insert({S("Manuf"), S("Billings")}).ok());
  auto j = NaturalJoin(emp, dept);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->size(), 3u);
  EXPECT_EQ(j->schema().arity(), 4u);
  EXPECT_TRUE(j->Contains({S("J Doe"), S("Sales"), I(50), S("Moose")}));
}

TEST(OpsTest, NaturalJoinDisjointSchemasIsProduct) {
  Relation a(Schema::Of({{"A", AtomType::kInt}}));
  Relation b(Schema::Of({{"B", AtomType::kInt}}));
  ASSERT_TRUE(a.Insert({I(1)}).ok());
  ASSERT_TRUE(a.Insert({I(2)}).ok());
  ASSERT_TRUE(b.Insert({I(10)}).ok());
  ASSERT_TRUE(b.Insert({I(20)}).ok());
  auto j = NaturalJoin(a, b);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->size(), 4u);
}

TEST(OpsTest, UnionAndDifference) {
  Relation a(Schema::Of({{"A", AtomType::kInt}}));
  Relation b(Schema::Of({{"A", AtomType::kInt}}));
  ASSERT_TRUE(a.Insert({I(1)}).ok());
  ASSERT_TRUE(a.Insert({I(2)}).ok());
  ASSERT_TRUE(b.Insert({I(2)}).ok());
  ASSERT_TRUE(b.Insert({I(3)}).ok());
  auto u = Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);
  auto d = Difference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 1u);
  EXPECT_TRUE(d->Contains({I(1)}));
  Relation c(Schema::Of({{"B", AtomType::kInt}}));
  EXPECT_FALSE(Union(a, c).ok());
  EXPECT_FALSE(Difference(a, c).ok());
}

TEST(OpsTest, Rename) {
  Relation a(Schema::Of({{"A", AtomType::kInt}}));
  ASSERT_TRUE(a.Insert({I(1)}).ok());
  auto renamed = Rename(a, "A", "X");
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(renamed->schema().Has("X"));
  EXPECT_FALSE(renamed->schema().Has("A"));
  EXPECT_FALSE(Rename(a, "Nope", "X").ok());
  Relation two(Schema::Of({{"A", AtomType::kInt}, {"B", AtomType::kInt}}));
  EXPECT_FALSE(Rename(two, "A", "B").ok());
}

TEST(OpsTest, SemiAndAntiJoin) {
  Relation emp = EmpRelation();
  Relation dept(Schema::Of({{"Dept", AtomType::kString}}));
  ASSERT_TRUE(dept.Insert({S("Sales")}).ok());
  auto semi = SemiJoin(emp, dept);
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(semi->size(), 2u);  // the two Sales employees
  EXPECT_EQ(semi->schema(), emp.schema());  // schema unchanged
  auto anti = AntiJoin(emp, dept);
  ASSERT_TRUE(anti.ok());
  EXPECT_EQ(anti->size(), 1u);  // M Dee (Manuf)
  // Semi ∪ anti = original.
  auto u = Union(*semi, *anti);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), emp.size());
}

TEST(OpsTest, DivisionFindsUniversallyQualified) {
  // Who is enrolled in *every* course?
  Relation enrolled(Schema::Of({{"Student", AtomType::kString},
                                {"Course", AtomType::kString}}));
  for (const char* c : {"db", "pl"}) {
    ASSERT_TRUE(enrolled.Insert({S("alice"), S(c)}).ok());
  }
  ASSERT_TRUE(enrolled.Insert({S("bob"), S("db")}).ok());
  Relation courses(Schema::Of({{"Course", AtomType::kString}}));
  ASSERT_TRUE(courses.Insert({S("db")}).ok());
  ASSERT_TRUE(courses.Insert({S("pl")}).ok());
  auto quotient = Divide(enrolled, courses);
  ASSERT_TRUE(quotient.ok()) << quotient.status();
  EXPECT_EQ(quotient->size(), 1u);
  EXPECT_TRUE(quotient->Contains({S("alice")}));
  // Divisor must be a strict attribute subset.
  EXPECT_FALSE(Divide(courses, enrolled).ok());
  EXPECT_FALSE(Divide(enrolled, enrolled).ok());
}

TEST(OpsTest, GroupByAggregates) {
  Relation emp = EmpRelation();
  auto grouped = GroupBy(emp, {"Dept"},
                         {{AggFunc::kCount, "", "N"},
                          {AggFunc::kSum, "Salary", "Total"},
                          {AggFunc::kMax, "Salary", "Top"}});
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  EXPECT_EQ(grouped->size(), 2u);
  EXPECT_TRUE(grouped->Contains({S("Sales"), I(2), I(105), I(55)}));
  EXPECT_TRUE(grouped->Contains({S("Manuf"), I(1), I(60), I(60)}));
}

TEST(OpsTest, GroupByWholeRelationIsAFold) {
  Relation emp = EmpRelation();
  auto total = GroupBy(emp, {}, {{AggFunc::kSum, "Salary", "Total"},
                                 {AggFunc::kMin, "Name", "First"}});
  ASSERT_TRUE(total.ok());
  ASSERT_EQ(total->size(), 1u);
  EXPECT_EQ(total->tuples()[0][0], I(165));
  EXPECT_EQ(total->tuples()[0][1], S("J Doe"));
  // Count of an empty relation is 0.
  Relation empty(EmpSchema());
  auto zero = GroupBy(empty, {}, {{AggFunc::kCount, "", "N"}});
  ASSERT_TRUE(zero.ok());
  ASSERT_EQ(zero->size(), 1u);
  EXPECT_EQ(zero->tuples()[0][0], I(0));
  // min/max over an empty relation is an error.
  EXPECT_FALSE(GroupBy(empty, {}, {{AggFunc::kMin, "Salary", "M"}}).ok());
}

TEST(OpsTest, GroupByErrors) {
  Relation emp = EmpRelation();
  EXPECT_FALSE(GroupBy(emp, {"Nope"}, {}).ok());
  EXPECT_FALSE(GroupBy(emp, {}, {{AggFunc::kSum, "Name", "X"}}).ok());
  EXPECT_FALSE(GroupBy(emp, {}, {{AggFunc::kSum, "Nope", "X"}}).ok());
}

// The bridge theorem: the generalized join of core/grelation.h,
// restricted to flat total records, IS the classical natural join.
TEST(BridgeTest, GeneralizedJoinEqualsClassicalOnFlatData) {
  dbpl::testing::Rng rng(77);
  Relation r1(Schema::Of({{"A", AtomType::kInt}, {"B", AtomType::kInt}}));
  Relation r2(Schema::Of({{"B", AtomType::kInt}, {"C", AtomType::kInt}}));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(r1.Insert({I(static_cast<int64_t>(rng.Below(5))),
                           I(static_cast<int64_t>(rng.Below(4)))})
                    .ok());
    ASSERT_TRUE(r2.Insert({I(static_cast<int64_t>(rng.Below(4))),
                           I(static_cast<int64_t>(rng.Below(5)))})
                    .ok());
  }
  auto classical = NaturalJoin(r1, r2);
  ASSERT_TRUE(classical.ok());
  core::GRelation generalized =
      *core::GRelation::Join(r1.ToGRelation(), r2.ToGRelation());
  EXPECT_EQ(generalized, classical->ToGRelation());
  // The same query through the relational-level bridge.
  auto bridged = GeneralizedNaturalJoin(r1, r2);
  ASSERT_TRUE(bridged.ok()) << bridged.status();
  EXPECT_EQ(bridged->ToGRelation(), generalized);
}

TEST(BridgeTest, RoundTripThroughGRelation) {
  Relation r = EmpRelation();
  auto back = Relation::FromGRelation(EmpSchema(), r.ToGRelation());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), r.size());
  for (const auto& t : r.tuples()) EXPECT_TRUE(back->Contains(t));
  // A partial record cannot come back as 1NF.
  core::GRelation partial;
  partial.Insert(Value::RecordOf({{"Name", S("X")}}));
  EXPECT_FALSE(Relation::FromGRelation(EmpSchema(), partial).ok());
}

// The paper: keys prevent ⊑-comparable objects from coexisting.
TEST(BridgeTest, KeysPreventComparableObjects) {
  auto r = Relation::WithKey(Schema::Of({{"Name", AtomType::kString},
                                         {"Dept", AtomType::kString}}),
                             {"Name"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->Insert({S("J Doe"), S("Sales")}).ok());
  // Any tuple comparable with an existing one must share its key and is
  // therefore rejected (flat total tuples: comparable means equal, and
  // equal-key partial updates are the interesting case in GRelation).
  EXPECT_FALSE(r->Insert({S("J Doe"), S("Admin")}).ok());
}

}  // namespace
}  // namespace dbpl::relational
