// Tests for the dbpl-serve network front-end (src/serve/). The
// centerpiece is the differential property: every protocol op issued
// over a real socketpair must be indistinguishable from the equivalent
// in-process call — same values, same ids, same typed errors — across
// all Get strategies and shard geometries. Around it: frame/codec
// round trips, pipelined in-order responses, session teardown
// mid-request, admission-control shedding (kUnavailable), a TCP
// end-to-end run, a 4-client × 4-worker stress run (the `serve-tsan`
// target), and the PR 5 durability oracle lifted to the wire: the
// server is killed at every VFS op while live clients stream writes,
// and recovery must present a committed prefix where every client
// either got an ack (durable) or an error (absent).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/value.h"
#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "persist/replica.h"
#include "persist/wal_database.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/remote_shipper.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "storage/fault_vfs.h"
#include "storage/vfs.h"
#include "test_util.h"
#include "types/parse.h"

namespace dbpl::serve {
namespace {

using core::Value;
using dyndb::Database;
using dyndb::Dynamic;
using dyndb::MakeDynamic;
using persist::CommitPolicy;
using persist::WalDatabase;
using persist::WalOptions;
using storage::FaultVfs;
using testing::Rng;
using types::ParseType;

Value Rec(int seq) {
  return Value::RecordOf(
      {{"Seq", Value::Int(seq)},
       {"Payload", Value::String(std::string(seq % 7, 's'))}});
}

types::Type RecT() { return *ParseType("{Seq: Int, Payload: String}"); }
types::Type SeqT() { return *ParseType("{Seq: Int}"); }

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/dbpl_serve_" + name + "_" +
                    std::to_string(::getpid());
  for (const char* f : {"/wal.log", "/wal.0.log", "/wal.1.log", "/wal.2.log",
                        "/wal.3.log", "/checkpoint.dbpl"}) {
    std::remove((dir + f).c_str());
  }
  return dir;
}

/// A server over a WalDatabase plus `n` socketpair clients adopted
/// into it — the in-process transport every differential test uses.
struct PairHarness {
  std::unique_ptr<Server> server;
  std::vector<Client> clients;
};

PairHarness StartPairServer(WalDatabase* wdb, int workers, int n_clients,
                            int max_sessions = 1024) {
  PairHarness h;
  ServeOptions opts;
  opts.workers = workers;
  opts.max_sessions = max_sessions;
  auto server = Server::Start(wdb, opts);
  EXPECT_TRUE(server.ok()) << server.status();
  h.server = std::move(*server);
  for (int i = 0; i < n_clients; ++i) {
    auto pair = Socket::Pair();
    EXPECT_TRUE(pair.ok()) << pair.status();
    Status adopted = h.server->AdoptConnection(std::move(pair->first));
    EXPECT_TRUE(adopted.ok()) << adopted;
    h.clients.emplace_back(std::move(pair->second));
  }
  return h;
}

/// Polls until the server has closed `n` sessions (or 5s elapse).
void WaitForClosedSessions(const Server& server, uint64_t n) {
  for (int i = 0; i < 5000; ++i) {
    if (server.stats().sessions_closed >= n) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "server never closed " << n << " session(s)";
}

// ---------------------------------------------------------------------
// Protocol codec (no server involved).
// ---------------------------------------------------------------------

TEST(ServeProtocolTest, RequestRoundTripsEveryOp) {
  std::vector<Request> reqs;
  Request r;
  r.op = ReqOp::kPing;
  reqs.push_back(r);
  r = {};
  r.op = ReqOp::kInsert;
  r.entry = MakeDynamic(Rec(7));
  reqs.push_back(r);
  r = {};
  r.op = ReqOp::kGet;
  r.entry_id = 42;
  reqs.push_back(r);
  for (ReqOp op : {ReqOp::kGetScan, ReqOp::kGetViaExtent, ReqOp::kGetViaIndex,
                   ReqOp::kGetPackages}) {
    r = {};
    r.op = op;
    r.type = RecT();
    reqs.push_back(r);
  }
  r = {};
  r.op = ReqOp::kRegisterExtent;
  r.extent_name = "recs";
  r.type = SeqT();
  reqs.push_back(r);
  r = {};
  r.op = ReqOp::kCommit;
  reqs.push_back(r);
  r = {};
  r.op = ReqOp::kInfo;
  reqs.push_back(r);
  r = {};
  r.op = ReqOp::kShipBounds;
  reqs.push_back(r);
  r = {};
  r.op = ReqOp::kReadChunk;
  r.file = ShipFile::kWalSegment;
  r.shard = 3;
  r.offset = 123456789;
  r.length = kMaxReadChunk;
  reqs.push_back(r);

  uint64_t id = 1;
  for (Request& req : reqs) {
    req.id = id++;
    ByteBuffer body;
    EncodeRequest(req, &body);
    auto decoded = DecodeRequest(body.data(), body.size());
    ASSERT_TRUE(decoded.ok()) << ReqOpName(req.op) << ": "
                              << decoded.status();
    EXPECT_EQ(decoded->id, req.id);
    EXPECT_EQ(decoded->op, req.op);
    EXPECT_EQ(decoded->entry, req.entry);
    EXPECT_EQ(decoded->entry_id, req.entry_id);
    EXPECT_EQ(decoded->type, req.type);
    EXPECT_EQ(decoded->extent_name, req.extent_name);
    EXPECT_EQ(decoded->file, req.file);
    EXPECT_EQ(decoded->shard, req.shard);
    EXPECT_EQ(decoded->offset, req.offset);
    EXPECT_EQ(decoded->length, req.length);
  }
}

TEST(ServeProtocolTest, ShippingPayloadsRoundTrip) {
  Response bounds;
  bounds.id = 3;
  bounds.op = ReqOp::kShipBounds;
  bounds.ship.generation = 7;
  bounds.ship.shards = {{100, 4}, {0, 0}, {65536, 12}};
  ByteBuffer body;
  EncodeResponse(bounds, &body);
  auto decoded = DecodeResponse(body.data(), body.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->ship.generation, 7u);
  ASSERT_EQ(decoded->ship.shards.size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(decoded->ship.shards[s].durable_bytes,
              bounds.ship.shards[s].durable_bytes);
    EXPECT_EQ(decoded->ship.shards[s].epoch, bounds.ship.shards[s].epoch);
  }

  Response chunk;
  chunk.id = 4;
  chunk.op = ReqOp::kReadChunk;
  chunk.file_size = 1u << 30;
  chunk.chunk = std::string("wal bytes\0with zeros", 20);
  body.clear();
  EncodeResponse(chunk, &body);
  decoded = DecodeResponse(body.data(), body.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->file_size, chunk.file_size);
  EXPECT_EQ(decoded->chunk, chunk.chunk);

  // A kReadChunk request asking for more than one frame can carry is
  // rejected at decode, before the server ever touches a file.
  Request oversize;
  oversize.op = ReqOp::kReadChunk;
  oversize.id = 5;
  oversize.length = kMaxReadChunk + 1;
  body.clear();
  EncodeRequest(oversize, &body);
  auto bad = DecodeRequest(body.data(), body.size());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, EncodeFrameRefusesOversizeBody) {
  const std::vector<uint8_t> big(kMaxFrameBody + 1, 0xAB);
  ByteBuffer body;
  body.PutRaw(big.data(), big.size());
  ByteBuffer frame;
  Status refused = EncodeFrame(body, &frame);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(frame.size(), 0u);  // nothing partial was emitted

  // One byte less is exactly at the limit and frames fine.
  body.clear();
  body.PutRaw(big.data(), kMaxFrameBody);
  ASSERT_TRUE(EncodeFrame(body, &frame).ok());
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + kMaxFrameBody);
}

TEST(ServeProtocolTest, ResponseRoundTripsPayloadsAndErrors) {
  Response ok;
  ok.id = 9;
  ok.op = ReqOp::kGetScan;
  ok.entries = {MakeDynamic(Rec(1)), MakeDynamic(Value::Int(3))};
  ByteBuffer body;
  EncodeResponse(ok, &body);
  auto decoded = DecodeResponse(body.data(), body.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->id, 9u);
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->entries, ok.entries);

  Response err;
  err.id = 10;
  err.op = ReqOp::kGet;
  err.status = Status::NotFound("no entry 99");
  body.clear();
  EncodeResponse(err, &body);
  decoded = DecodeResponse(body.data(), body.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded->status.message(), "no entry 99");

  // Every status code survives the wire byte round trip.
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted); ++c) {
    auto code = static_cast<StatusCode>(c);
    EXPECT_EQ(CodeFromWire(WireCodeOf(code)), code);
  }
  EXPECT_EQ(CodeFromWire(200), StatusCode::kInternal);
}

TEST(ServeProtocolTest, FrameDetectsTruncationOversizeAndCorruption) {
  ByteBuffer body;
  Request req;
  req.op = ReqOp::kPing;
  req.id = 1;
  EncodeRequest(req, &body);
  ByteBuffer frame;
  ASSERT_TRUE(EncodeFrame(body, &frame).ok());

  size_t total = 0;
  std::string error;
  // Every strict prefix is kNeedMore, never kBad or a bogus kFrame.
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(InspectFrame(frame.data(), n, &total, &error),
              FrameStatus::kNeedMore)
        << "prefix " << n;
  }
  ASSERT_EQ(InspectFrame(frame.data(), frame.size(), &total, &error),
            FrameStatus::kFrame);
  EXPECT_EQ(total, frame.size());

  // A flipped body bit is a CRC mismatch.
  std::vector<uint8_t> bad(frame.data(), frame.data() + frame.size());
  bad[kFrameHeaderBytes] ^= 0x40;
  EXPECT_EQ(InspectFrame(bad.data(), bad.size(), &total, &error),
            FrameStatus::kBad);

  // A hostile length field is rejected from the header alone.
  uint8_t huge[kFrameHeaderBytes] = {0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(InspectFrame(huge, sizeof(huge), &total, &error),
            FrameStatus::kBad);
  EXPECT_NE(error.find("exceeds limit"), std::string::npos);
}

// ---------------------------------------------------------------------
// Basic serving + typed error mapping.
// ---------------------------------------------------------------------

TEST(ServeTest, PingInfoAndTypedErrors) {
  FaultVfs vfs(1);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  PairHarness h = StartPairServer(wdb->get(), /*workers=*/2, /*clients=*/1);
  Client& c = h.clients[0];

  EXPECT_TRUE(c.Ping().ok());

  auto info = c.GetInfo();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->size, 0u);
  EXPECT_EQ(info->shards, 1);

  // NotFound maps through the wire with its message.
  auto missing = c.Get(99);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // GetViaExtent without a registration is NotFound — same as
  // in-process.
  EXPECT_EQ(c.GetViaExtent(RecT()).status().code(), StatusCode::kNotFound);

  // AlreadyExists maps too.
  EXPECT_TRUE(c.RegisterExtent("recs", RecT()).ok());
  EXPECT_EQ(c.RegisterExtent("recs", SeqT()).code(),
            StatusCode::kAlreadyExists);

  // The session survives all those errors.
  auto id = c.InsertValue(Rec(1));
  ASSERT_TRUE(id.ok()) << id.status();
  auto back = c.Get(*id);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->value, Rec(1));
}

TEST(ServeTest, GarbageFrameGetsErrorResponseThenDisconnect) {
  FaultVfs vfs(1);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  PairHarness h = StartPairServer(wdb->get(), 1, 1);
  Client& c = h.clients[0];

  const char garbage[] = "this is not a dbpl frame at all!";
  ASSERT_TRUE(c.socket().SendAll(garbage, sizeof(garbage)).ok());

  // One final in-band error (op kNone — there is no request id to
  // echo), then EOF.
  auto resp = c.Await();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->op, ReqOp::kNone);
  EXPECT_EQ(resp->status.code(), StatusCode::kCorruption);
  EXPECT_FALSE(c.Await().ok());
  WaitForClosedSessions(*h.server, 1);
  EXPECT_EQ(h.server->stats().protocol_errors, 1u);
}

TEST(ServeTest, UnknownVersionAndOpcodeAreRejectedInBand) {
  FaultVfs vfs(1);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  PairHarness h = StartPairServer(wdb->get(), 1, 2);

  {
    // CRC-valid frame, future protocol version -> kUnsupported.
    ByteBuffer body;
    body.PutU8(kProtocolVersion + 1);
    body.PutU8(static_cast<uint8_t>(ReqOp::kPing));
    body.PutU64(1);
    ByteBuffer frame;
    ASSERT_TRUE(EncodeFrame(body, &frame).ok());
    Client& c = h.clients[0];
    ASSERT_TRUE(c.socket().SendAll(frame.data(), frame.size()).ok());
    auto resp = c.Await();
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status.code(), StatusCode::kUnsupported);
    EXPECT_FALSE(c.Await().ok());  // disconnected after
  }
  {
    // CRC-valid frame, unknown opcode -> kInvalidArgument.
    ByteBuffer body;
    body.PutU8(kProtocolVersion);
    body.PutU8(0xEE);
    body.PutU64(2);
    ByteBuffer frame;
    ASSERT_TRUE(EncodeFrame(body, &frame).ok());
    Client& c = h.clients[1];
    ASSERT_TRUE(c.socket().SendAll(frame.data(), frame.size()).ok());
    auto resp = c.Await();
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status.code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------
// The differential property: wire ≡ in-process.
// ---------------------------------------------------------------------

/// Runs `ops` random operations against a served WalDatabase (through
/// `client`) and an in-process mirror database with the same shard
/// count, asserting identical observable behaviour after every step.
void RunDifferential(Client& client, Database& mirror, uint64_t seed,
                     int ops) {
  Rng rng(seed);
  const std::vector<types::Type> type_pool = {
      RecT(), SeqT(), *ParseType("{Name: String}"), *ParseType("Int"),
      *ParseType("Top")};
  const std::vector<std::string> extent_names = {"e0", "e1", "e2"};

  for (int i = 0; i < ops; ++i) {
    switch (rng.Below(6)) {
      case 0:
      case 1: {  // insert — returned ids must match exactly
        Value v = rng.Coin() ? testing::RandomRecord(rng)
                             : testing::RandomValue(rng, 2);
        auto wire_id = client.InsertValue(v);
        auto local_id = mirror.InsertValue(v);
        ASSERT_TRUE(wire_id.ok()) << wire_id.status();
        ASSERT_TRUE(local_id.ok()) << local_id.status();
        ASSERT_EQ(*wire_id, *local_id) << "op " << i;
        break;
      }
      case 2: {  // point Get — value, type and NotFound must agree
        uint64_t id = rng.Below(mirror.size() + 3);
        auto wire = client.Get(id);
        auto local = mirror.Get(id);
        ASSERT_EQ(wire.ok(), local.ok()) << "op " << i << " Get(" << id
                                         << ")";
        if (wire.ok()) {
          EXPECT_EQ(*wire, *local);
        } else {
          EXPECT_EQ(wire.status().code(), local.status().code());
        }
        break;
      }
      case 3: {  // all three value strategies + packages
        const types::Type& t = type_pool[rng.Below(type_pool.size())];
        auto scan = client.GetScan(t);
        ASSERT_TRUE(scan.ok()) << scan.status();
        EXPECT_EQ(*scan, mirror.GetScan(t)) << "op " << i;
        auto index = client.GetViaIndex(t);
        ASSERT_TRUE(index.ok()) << index.status();
        EXPECT_EQ(*index, mirror.GetViaIndex(t)) << "op " << i;
        auto packages = client.GetPackages(t);
        ASSERT_TRUE(packages.ok()) << packages.status();
        EXPECT_EQ(*packages, mirror.GetPackages(t)) << "op " << i;
        break;
      }
      case 4: {  // extent registration and reads, collisions included
        const types::Type& t = type_pool[rng.Below(type_pool.size())];
        if (rng.Coin()) {
          const std::string& name =
              extent_names[rng.Below(extent_names.size())];
          Status wire = client.RegisterExtent(name, t);
          Status local = mirror.RegisterExtent(name, t);
          EXPECT_EQ(wire.code(), local.code()) << "op " << i;
        } else {
          auto wire = client.GetViaExtent(t);
          auto local = mirror.GetViaExtent(t);
          ASSERT_EQ(wire.ok(), local.ok()) << "op " << i;
          if (wire.ok()) {
            EXPECT_EQ(*wire, *local);
          } else {
            EXPECT_EQ(wire.status().code(), local.status().code());
          }
        }
        break;
      }
      default: {  // size/epoch agreement (+ a durability commit)
        if (rng.Coin()) {
          ASSERT_TRUE(client.Commit().ok());
        }
        auto info = client.GetInfo();
        ASSERT_TRUE(info.ok()) << info.status();
        EXPECT_EQ(info->size, mirror.size()) << "op " << i;
        EXPECT_EQ(info->epoch, mirror.epoch()) << "op " << i;
        break;
      }
    }
  }
}

TEST(ServeTest, DifferentialRandomOpsSingleShard) {
  FaultVfs vfs(7);
  auto wdb = WalDatabase::Open(&vfs, "db", WalOptions{{4, true}, 1});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  Database mirror;
  PairHarness h = StartPairServer(wdb->get(), /*workers=*/2, /*clients=*/1);
  RunDifferential(h.clients[0], mirror, /*seed=*/0xD1FF, /*ops=*/220);
}

TEST(ServeTest, DifferentialRandomOpsShardedWireVsShardedLocal) {
  // K = 3 served vs K = 3 in-process: the wire adds nothing to the id
  // assignment or any read strategy (shard-obliviousness composes with
  // the protocol). Single worker so the FaultVfs lanes are touched by
  // one thread at a time.
  FaultVfs vfs(11);
  auto wdb = WalDatabase::Open(&vfs, "db", WalOptions{{2, true}, 3});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  Database mirror(dyndb::DatabaseOptions{3});
  PairHarness h = StartPairServer(wdb->get(), /*workers=*/1, /*clients=*/1);
  RunDifferential(h.clients[0], mirror, /*seed=*/0x5A4D, /*ops=*/180);
}

// ---------------------------------------------------------------------
// Pipelining.
// ---------------------------------------------------------------------

TEST(ServeTest, PipelinedRequestsAnsweredInOrder) {
  FaultVfs vfs(3);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{8, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  PairHarness h = StartPairServer(wdb->get(), 2, 1);
  Client& c = h.clients[0];

  // Queue 60 requests without reading a single response: 20 × (insert,
  // point get of that insert's id, info).
  constexpr int kBatches = 20;
  std::vector<uint64_t> sent_ids;
  for (int i = 0; i < kBatches; ++i) {
    Request ins;
    ins.op = ReqOp::kInsert;
    ins.entry = MakeDynamic(Rec(i));
    auto sid = c.Send(std::move(ins));
    ASSERT_TRUE(sid.ok()) << sid.status();
    sent_ids.push_back(*sid);

    Request get;
    get.op = ReqOp::kGet;
    get.entry_id = static_cast<uint64_t>(i);
    sid = c.Send(std::move(get));
    ASSERT_TRUE(sid.ok()) << sid.status();
    sent_ids.push_back(*sid);

    Request info;
    info.op = ReqOp::kInfo;
    sid = c.Send(std::move(info));
    ASSERT_TRUE(sid.ok()) << sid.status();
    sent_ids.push_back(*sid);
  }

  // Responses arrive strictly in request order (Client::Await also
  // verifies each id against the oldest outstanding request).
  for (int i = 0; i < kBatches; ++i) {
    auto ins = c.Await();
    ASSERT_TRUE(ins.ok()) << ins.status();
    EXPECT_EQ(ins->id, sent_ids[static_cast<size_t>(3 * i)]);
    ASSERT_TRUE(ins->status.ok()) << ins->status;
    EXPECT_EQ(ins->entry_id, static_cast<uint64_t>(i));

    auto get = c.Await();
    ASSERT_TRUE(get.ok()) << get.status();
    ASSERT_TRUE(get->status.ok()) << get->status;
    ASSERT_EQ(get->entries.size(), 1u);
    // The pipelined get ran after its preceding insert: entry i
    // already existed.
    EXPECT_EQ(get->entries[0].value, Rec(i));

    auto info = c.Await();
    ASSERT_TRUE(info.ok()) << info.status();
    // Monotone view: at least i+1 entries existed when the info ran.
    EXPECT_GE(info->size, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(wdb->get()->db().size(), static_cast<size_t>(kBatches));
}

// ---------------------------------------------------------------------
// Session teardown.
// ---------------------------------------------------------------------

TEST(ServeTest, TeardownMidRequestLeavesDatabaseConsistent) {
  FaultVfs vfs(5);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  PairHarness h = StartPairServer(wdb->get(), 2, 2);

  // Client 0 sends *half* an insert frame and vanishes.
  ByteBuffer body;
  Request req;
  req.op = ReqOp::kInsert;
  req.id = 1;
  req.entry = MakeDynamic(Rec(42));
  EncodeRequest(req, &body);
  ByteBuffer frame;
  ASSERT_TRUE(EncodeFrame(body, &frame).ok());
  ASSERT_GT(frame.size(), 8u);
  ASSERT_TRUE(
      h.clients[0].socket().SendAll(frame.data(), frame.size() / 2).ok());
  h.clients[0].socket().Close();

  WaitForClosedSessions(*h.server, 1);

  // The torn request executed nothing; the database is untouched and
  // still fully serviceable through the surviving session.
  EXPECT_EQ(wdb->get()->db().size(), 0u);
  EXPECT_TRUE(wdb->get()->wal_status().ok());
  Client& alive = h.clients[1];
  auto id = alive.InsertValue(Rec(1));
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(wdb->get()->db().size(), 1u);
  EXPECT_EQ(h.server->stats().requests_ok, 1u);
}

TEST(ServeTest, PeerVanishingBeforeReadingResponseIsContained) {
  FaultVfs vfs(5);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  PairHarness h = StartPairServer(wdb->get(), 2, 2);

  // A complete request followed by an immediate close: the server must
  // execute it, survive the dead response path (no SIGPIPE), and keep
  // serving others.
  Request req;
  req.op = ReqOp::kInsert;
  req.entry = MakeDynamic(Rec(9));
  ASSERT_TRUE(h.clients[0].Send(std::move(req)).ok());
  h.clients[0].socket().Close();

  WaitForClosedSessions(*h.server, 1);
  EXPECT_TRUE(h.clients[1].Ping().ok());
  // The fully-delivered request was executed even though nobody read
  // the ack.
  EXPECT_EQ(wdb->get()->db().size(), 1u);
}

// ---------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------

TEST(ServeTest, OverloadShedsWithUnavailable) {
  FaultVfs vfs(5);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  PairHarness h = StartPairServer(wdb->get(), 1, /*clients=*/2,
                                  /*max_sessions=*/2);

  // Both admitted sessions work.
  EXPECT_TRUE(h.clients[0].Ping().ok());
  EXPECT_TRUE(h.clients[1].Ping().ok());

  // The third is refused: AdoptConnection reports kUnavailable and the
  // peer receives one kUnavailable frame (op kNone) before the close.
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  Status adopted = h.server->AdoptConnection(std::move(pair->first));
  EXPECT_EQ(adopted.code(), StatusCode::kUnavailable);
  Client shed(std::move(pair->second));
  auto resp = shed.Await();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->op, ReqOp::kNone);
  EXPECT_EQ(resp->status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(shed.Await().ok());  // then EOF
  EXPECT_EQ(h.server->stats().sessions_shed, 1u);

  // Capacity is by *live* sessions: once one leaves, the next
  // connection is admitted again.
  h.clients[0].socket().Close();
  WaitForClosedSessions(*h.server, 1);
  auto pair2 = Socket::Pair();
  ASSERT_TRUE(pair2.ok()) << pair2.status();
  EXPECT_TRUE(h.server->AdoptConnection(std::move(pair2->first)).ok());
  Client again(std::move(pair2->second));
  EXPECT_TRUE(again.Ping().ok());
}

// ---------------------------------------------------------------------
// TCP end to end.
// ---------------------------------------------------------------------

TEST(ServeTest, TcpEndToEnd) {
  FaultVfs vfs(5);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ServeOptions opts;
  opts.workers = 2;
  opts.listen = true;
  opts.port = 0;  // ephemeral
  auto server = Server::Start(wdb->get(), opts);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_NE((*server)->port(), 0);

  auto c1 = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(c1.ok()) << c1.status();
  auto c2 = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(c2.ok()) << c2.status();

  ASSERT_TRUE(c1->RegisterExtent("recs", RecT()).ok());
  auto id = c1->InsertValue(Rec(5));
  ASSERT_TRUE(id.ok()) << id.status();

  // The second connection reads what the first wrote.
  auto got = c2->Get(*id);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->value, Rec(5));
  auto extent = c2->GetViaExtent(RecT());
  ASSERT_TRUE(extent.ok()) << extent.status();
  EXPECT_EQ(extent->size(), 1u);

  (*server)->Stop();
  // After Stop every session is closed: the next call fails cleanly.
  EXPECT_FALSE(c1->Ping().ok());
}

TEST(ServeTest, TcpOverloadShedsAtAccept) {
  FaultVfs vfs(5);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ServeOptions opts;
  opts.workers = 1;
  opts.max_sessions = 1;
  opts.listen = true;
  auto server = Server::Start(wdb->get(), opts);
  ASSERT_TRUE(server.ok()) << server.status();

  auto keeper = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(keeper.ok()) << keeper.status();
  ASSERT_TRUE(keeper->Ping().ok());  // admitted and served

  auto refused = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(refused.ok()) << refused.status();  // TCP accepts...
  auto resp = refused->Await();  // ...then the server sheds in-band
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ((*server)->stats().sessions_shed, 1u);

  // The admitted session was never disturbed.
  EXPECT_TRUE(keeper->Ping().ok());
}

// ---------------------------------------------------------------------
// 4 clients × 4 workers stress (the serve-tsan target).
// ---------------------------------------------------------------------

TEST(ServeTest, StressFourClientsFourWorkers) {
  storage::PosixVfs vfs;
  const std::string dir = FreshDir("stress");
  auto wdb = WalDatabase::Open(&vfs, dir, WalOptions{{8, true}, 2});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE(wdb->get()->RegisterExtent("recs", RecT()).ok());

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 50;
  PairHarness h = StartPairServer(wdb->get(), /*workers=*/4, kClients);

  std::vector<std::map<uint64_t, Value>> acked(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client& c = h.clients[static_cast<size_t>(t)];
      for (int i = 0; i < kOpsPerClient; ++i) {
        Value v = Rec(t * 1000 + i);
        auto id = c.InsertValue(v);
        EXPECT_TRUE(id.ok()) << id.status();
        if (id.ok()) acked[static_cast<size_t>(t)][*id] = v;
        // Read-your-writes through the same session.
        if (i % 5 == 0 && id.ok()) {
          auto back = c.Get(*id);
          EXPECT_TRUE(back.ok()) << back.status();
          if (back.ok()) {
            EXPECT_EQ(back->value, v);
          }
        }
        // Snapshot reads interleave with everyone's writes.
        if (i % 10 == 0) {
          auto scan = c.GetViaIndex(RecT());
          EXPECT_TRUE(scan.ok()) << scan.status();
        }
      }
      EXPECT_TRUE(c.Commit().ok());
    });
  }
  for (std::thread& th : threads) th.join();

  // Every acked insert is present with the right value; nothing else
  // was written.
  const Database& db = wdb->get()->db();
  size_t total = 0;
  for (int t = 0; t < kClients; ++t) {
    total += acked[static_cast<size_t>(t)].size();
    for (const auto& [id, v] : acked[static_cast<size_t>(t)]) {
      auto got = db.Get(id);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(got->value, v);
    }
  }
  EXPECT_EQ(db.size(), total);
  EXPECT_EQ(total, static_cast<size_t>(kClients * kOpsPerClient));
  EXPECT_TRUE(wdb->get()->wal_status().ok());

  ServerStats stats = h.server->stats();
  EXPECT_EQ(stats.requests_error, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// ---------------------------------------------------------------------
// The durability oracle lifted to the wire: kill the server's storage
// at every VFS op while live clients stream writes.
// ---------------------------------------------------------------------

struct WireCrashOutcome {
  bool open_failed = false;
  /// Per streamed value: true = the client got an OK response.
  std::map<int, bool> acked;
  uint64_t total_vfs_ops = 0;
};

/// One server lifetime under an armed FaultVfs: 3 socketpair clients
/// each stream 5 writes, recording which were acked. workers=1 keeps
/// the (thread-compatible, not thread-safe) FaultVfs touched by one
/// server thread only; clients touch only their sockets.
WireCrashOutcome ServeUntilCrash(FaultVfs* vfs) {
  WireCrashOutcome out;
  auto wdb = WalDatabase::Open(vfs, "db", WalOptions{{1, true}, 1});
  if (!wdb.ok()) {
    out.open_failed = true;
    out.total_vfs_ops = vfs->mutating_ops();
    return out;
  }
  constexpr int kClients = 3;
  constexpr int kWritesEach = 5;
  {
    PairHarness h = StartPairServer(wdb->get(), /*workers=*/1, kClients);
    std::vector<std::thread> threads;
    dbpl::Mutex acked_mu;
    threads.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        Client& c = h.clients[static_cast<size_t>(t)];
        for (int i = 0; i < kWritesEach; ++i) {
          const int seq = t * 100 + i;
          auto id = c.InsertValue(Rec(seq));
          dbpl::MutexLock lock(&acked_mu);
          out.acked[seq] = id.ok();
        }
      });
    }
    for (std::thread& th : threads) th.join();
    h.server->Stop();
  }
  wdb->reset();  // destructor's best-effort flush happens here
  out.total_vfs_ops = vfs->mutating_ops();
  return out;
}

/// The values present in a recovered database, keyed by their Seq.
std::set<int> RecoveredSeqs(const Database& db) {
  std::set<int> seqs;
  db.GetSnapshot().ForEachEntry([&](Database::EntryId, const Dynamic& d) {
    for (int t = 0; t < 3; ++t) {
      for (int i = 0; i < 5; ++i) {
        const int seq = t * 100 + i;
        if (d.value == Rec(seq)) seqs.insert(seq);
      }
    }
  });
  return seqs;
}

TEST(ServeCrashMatrixTest, ServerKilledAtEveryVfsOpWhileClientsStream) {
  // Fault-free pass: learn the op budget.
  const uint64_t total_ops = [] {
    FaultVfs vfs(0xC0FFEE);
    WireCrashOutcome out = ServeUntilCrash(&vfs);
    EXPECT_FALSE(out.open_failed);
    for (const auto& [seq, ok] : out.acked) EXPECT_TRUE(ok) << seq;
    return out.total_vfs_ops;
  }();
  ASSERT_GT(total_ops, 10u);

  const FaultVfs::UnsyncedFate kFates[] = {
      FaultVfs::UnsyncedFate::kLost, FaultVfs::UnsyncedFate::kTornPrefix,
      FaultVfs::UnsyncedFate::kSurvives};

  for (uint64_t k = 1; k <= total_ops; ++k) {
    for (FaultVfs::UnsyncedFate fate : kFates) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + " fate " +
                   std::to_string(static_cast<int>(fate)));
      FaultVfs vfs(0xC0FFEE);
      vfs.CrashAtMutatingOp(k);
      WireCrashOutcome out = ServeUntilCrash(&vfs);

      // Power loss, then restart: recovery must always succeed.
      vfs.PowerLoss(fate);
      auto reopened = WalDatabase::Open(&vfs, "db", WalOptions{{1, true}, 1});
      ASSERT_TRUE(reopened.ok()) << reopened.status();
      const std::set<int> recovered = RecoveredSeqs((*reopened)->db());

      // The wire durability oracle. An acked write returned OK only
      // after its group's fsync barrier, so:
      //  * acked => present, under every fate (kLost keeps synced
      //    bytes);
      //  * errored => absent under kLost (its bytes, if any, were
      //    never synced);
      //  * under kTornPrefix/kSurvives an errored write may still be
      //    present (e.g. record and marker landed but the barrier's
      //    fsync failed after them) — clients were told "unresolved",
      //    not "absent", which is exactly the PR 5 oracle.
      for (const auto& [seq, was_acked] : out.acked) {
        if (was_acked) {
          EXPECT_TRUE(recovered.count(seq) == 1)
              << "acked write " << seq << " lost";
        } else if (fate == FaultVfs::UnsyncedFate::kLost) {
          EXPECT_TRUE(recovered.count(seq) == 0)
              << "errored write " << seq << " present after kLost";
        }
      }
      // Nothing recovered that was never streamed and acked/attempted.
      for (int seq : recovered) {
        ASSERT_TRUE(out.acked.count(seq) == 1) << "phantom value " << seq;
      }

      // The recovered database is a usable primary again.
      auto id = (*reopened)->InsertValue(Rec(999));
      ASSERT_TRUE(id.ok()) << id.status();
      auto back = (*reopened)->db().Get(*id);
      ASSERT_TRUE(back.ok()) << back.status();
      EXPECT_EQ(back->value, Rec(999));
    }
  }
}

// ---------------------------------------------------------------------
// Oversize responses: answered in-band, session survives.
// ---------------------------------------------------------------------

/// A record whose payload alone is `n` bytes.
Value BigRec(int seq, size_t n) {
  return Value::RecordOf({{"Seq", Value::Int(seq)},
                          {"Payload", Value::String(std::string(n, 'p'))}});
}

TEST(ServeTest, OversizeScanAnsweredInBandAndSessionSurvives) {
  FaultVfs vfs(5);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE(wdb->get()->RegisterExtent("recs", RecT()).ok());
  // 17 × 1MiB of payload: the full scan cannot fit one ≤16MiB frame,
  // but any single record can.
  constexpr int kRecords = 17;
  constexpr size_t kPayload = 1u << 20;
  dyndb::Database::EntryId last_id = 0;
  for (int i = 0; i < kRecords; ++i) {
    auto id = wdb->get()->InsertValue(BigRec(i, kPayload));
    ASSERT_TRUE(id.ok()) << id.status();
    last_id = *id;
  }
  ASSERT_TRUE(wdb->get()->Commit().ok());

  PairHarness h = StartPairServer(wdb->get(), /*workers=*/1, /*clients=*/1);
  Client& c = h.clients[0];

  // Pipeline the poison request and an innocent one behind it. The
  // refusal must arrive in-band, for the right request id, and the
  // ping behind it must still be answered on the same session.
  Request scan;
  scan.op = ReqOp::kGetScan;
  scan.type = RecT();
  auto scan_id = c.Send(std::move(scan));
  ASSERT_TRUE(scan_id.ok()) << scan_id.status();
  Request ping;
  ping.op = ReqOp::kPing;
  ASSERT_TRUE(c.Send(std::move(ping)).ok());

  auto refusal = c.Await();
  ASSERT_TRUE(refusal.ok()) << refusal.status();  // transport survived
  EXPECT_EQ(refusal->id, *scan_id);
  EXPECT_EQ(refusal->op, ReqOp::kGetScan);
  EXPECT_EQ(refusal->status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(refusal->entries.empty());  // refusal carries no payload

  auto pong = c.Await();
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->status.ok());

  // The typed convenience surfaces the same refusal...
  auto scan2 = c.GetScan(RecT());
  EXPECT_EQ(scan2.status().code(), StatusCode::kResourceExhausted);
  // ...and a query whose response fits still works afterwards.
  auto one = c.Get(last_id);
  ASSERT_TRUE(one.ok()) << one.status();
  EXPECT_EQ(one->value, BigRec(kRecords - 1, kPayload));

  ServerStats stats = h.server->stats();
  EXPECT_EQ(stats.sessions_closed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GE(stats.requests_error, 2u);  // the two refused scans
}

// ---------------------------------------------------------------------
// Client receive deadline.
// ---------------------------------------------------------------------

TEST(ServeTest, AwaitDeadlineExpiresOnSilentPeer) {
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  Client c(std::move(pair->first));
  c.set_await_timeout(std::chrono::milliseconds(100));
  // The peer exists but never answers (nothing is reading either, but
  // one ping fits the socketpair buffer).
  Request ping;
  ping.op = ReqOp::kPing;
  ASSERT_TRUE(c.Send(std::move(ping)).ok());

  const auto t0 = std::chrono::steady_clock::now();
  auto resp = c.Await();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(resp.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed, std::chrono::milliseconds(90));
  EXPECT_LT(elapsed, std::chrono::seconds(5));

  // A peer that trickles half a header and stalls hits the same
  // deadline: it bounds the whole frame read, not each byte.
  const uint8_t half_header[4] = {1, 2, 3, 4};
  ASSERT_TRUE(pair->second.SendAll(half_header, sizeof(half_header)).ok());
  EXPECT_EQ(c.Await().status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------
// The shipping ops: kShipBounds / kReadChunk.
// ---------------------------------------------------------------------

TEST(ServeTest, ShipBoundsMatchesInProcessShipper) {
  FaultVfs vfs(5);
  auto wdb = WalDatabase::Open(&vfs, "db", WalOptions{{1, true}, 2});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE(wdb->get()->RegisterExtent("recs", RecT()).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(wdb->get()->InsertValue(Rec(i)).ok());
  }
  ASSERT_TRUE(wdb->get()->Commit().ok());

  PairHarness h = StartPairServer(wdb->get(), /*workers=*/1, /*clients=*/1);
  auto wire = h.clients[0].ShipBounds();
  ASSERT_TRUE(wire.ok()) << wire.status();
  const auto local = wdb->get()->ship_bounds();
  EXPECT_EQ(wire->generation, local.generation);
  ASSERT_EQ(wire->shards.size(), local.shards.size());
  for (size_t s = 0; s < local.shards.size(); ++s) {
    EXPECT_EQ(wire->shards[s].durable_bytes, local.shards[s].durable_bytes);
    EXPECT_EQ(wire->shards[s].epoch, local.shards[s].epoch);
  }
  EXPECT_GT(wire->epoch(), 0u);
}

TEST(ServeTest, ReadChunkBoundariesMatchTheFile) {
  FaultVfs vfs(5);
  auto wdb = WalDatabase::Open(&vfs, "db", CommitPolicy{1, true});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE(wdb->get()->RegisterExtent("recs", RecT()).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(wdb->get()->InsertValue(Rec(i)).ok());
  }
  ASSERT_TRUE(wdb->get()->Commit().ok());

  const uint64_t durable = wdb->get()->ship_bounds().shards[0].durable_bytes;
  ASSERT_GT(durable, 0u);
  auto file_bytes = vfs.ReadFileBytes(wdb->get()->wal_path(0));
  ASSERT_TRUE(file_bytes.ok()) << file_bytes.status();
  const std::string wal(file_bytes->begin(), file_bytes->end());

  PairHarness h = StartPairServer(wdb->get(), /*workers=*/1, /*clients=*/1);
  Client& c = h.clients[0];

  // Offset 0, the whole durable prefix.
  auto whole = c.ReadChunk(ShipFile::kWalSegment, 0, 0, durable);
  ASSERT_TRUE(whole.ok()) << whole.status();
  EXPECT_EQ(whole->file_size, wal.size());
  EXPECT_EQ(whole->data, wal.substr(0, durable));

  // A mid-file range.
  const uint64_t mid = durable / 2;
  auto tail = c.ReadChunk(ShipFile::kWalSegment, 0, mid, durable - mid);
  ASSERT_TRUE(tail.ok()) << tail.status();
  EXPECT_EQ(tail->data, wal.substr(mid, durable - mid));

  // Reading exactly at the end of the file: empty, not an error.
  auto at_end = c.ReadChunk(ShipFile::kWalSegment, 0, wal.size(), 64);
  ASSERT_TRUE(at_end.ok()) << at_end.status();
  EXPECT_EQ(at_end->file_size, wal.size());
  EXPECT_TRUE(at_end->data.empty());

  // Past the end: also empty.
  auto past = c.ReadChunk(ShipFile::kWalSegment, 0, wal.size() + 4096, 64);
  ASSERT_TRUE(past.ok()) << past.status();
  EXPECT_TRUE(past->data.empty());

  // A zero-length read is the cheap "stat": size only.
  auto stat = c.ReadChunk(ShipFile::kWalSegment, 0, 0, 0);
  ASSERT_TRUE(stat.ok()) << stat.status();
  EXPECT_EQ(stat->file_size, wal.size());
  EXPECT_TRUE(stat->data.empty());

  // A shard this (1-shard) primary does not have: typed error, session
  // survives.
  auto bad_shard = c.ReadChunk(ShipFile::kWalSegment, 1, 0, 16);
  EXPECT_EQ(bad_shard.status().code(), StatusCode::kInvalidArgument);

  // No checkpoint has been written yet: NotFound, in-band.
  auto no_ckpt = c.ReadChunk(ShipFile::kCheckpoint, 0, 0, 16);
  EXPECT_EQ(no_ckpt.status().code(), StatusCode::kNotFound);

  // After a checkpoint the same read succeeds and matches the file.
  ASSERT_TRUE(wdb->get()->Checkpoint().ok());
  auto ckpt_bytes = vfs.ReadFileBytes(wdb->get()->checkpoint_path());
  ASSERT_TRUE(ckpt_bytes.ok()) << ckpt_bytes.status();
  auto ckpt = c.ReadChunk(ShipFile::kCheckpoint, 0, 0,
                          std::min<uint64_t>(ckpt_bytes->size(), 4096));
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_EQ(ckpt->file_size, ckpt_bytes->size());
  EXPECT_EQ(ckpt->data,
            std::string(ckpt_bytes->begin(),
                        ckpt_bytes->begin() +
                            static_cast<long>(ckpt->data.size())));

  EXPECT_EQ(h.server->stats().sessions_closed, 0u);
}

// ---------------------------------------------------------------------
// RemoteShipper: an unmodified Replica over the wire.
// ---------------------------------------------------------------------

/// Follower == primary, compared through snapshots (the serve-side
/// sibling of crash_recovery_test's ExpectConverged).
void ExpectConverged(const Database& primary, const Database& follower) {
  Database::Snapshot p = primary.GetSnapshot();
  Database::Snapshot f = follower.GetSnapshot();
  ASSERT_EQ(p.size(), f.size());
  EXPECT_EQ(p.epoch(), f.epoch());
  // Ids are shard-striped, so walk the entries rather than indexing.
  std::map<Database::EntryId, Value> pv, fv;
  p.ForEachEntry([&](Database::EntryId id, const Dynamic& d) { pv[id] = d.value; });
  f.ForEachEntry([&](Database::EntryId id, const Dynamic& d) { fv[id] = d.value; });
  EXPECT_EQ(pv, fv);
  ASSERT_EQ(p.ExtentNames(), f.ExtentNames());
}

TEST(ServeTest, RemoteFollowerConvergesOverSocketpair) {
  FaultVfs vfs(7);
  auto wdb = WalDatabase::Open(&vfs, "db", WalOptions{{1, true}, 2});
  ASSERT_TRUE(wdb.ok()) << wdb.status();
  ASSERT_TRUE(wdb->get()->RegisterExtent("recs", RecT()).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wdb->get()->InsertValue(Rec(i)).ok());
  }
  ASSERT_TRUE(wdb->get()->Commit().ok());

  PairHarness h = StartPairServer(wdb->get(), /*workers=*/1, /*clients=*/0);
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  ASSERT_TRUE(h.server->AdoptConnection(std::move(pair->first)).ok());
  auto shipper = RemoteShipper::Adopt(std::move(pair->second));
  ASSERT_TRUE(shipper.ok()) << shipper.status();
  EXPECT_EQ((*shipper)->shard_count(), 2);

  persist::Replica follower;
  ASSERT_TRUE(follower.Attach(shipper->get()).ok());
  ExpectConverged(wdb->get()->db(), follower.db());

  // Incremental tailing: new commits arrive on the next poll.
  for (int i = 10; i < 16; ++i) {
    ASSERT_TRUE(wdb->get()->InsertValue(Rec(i)).ok());
  }
  ASSERT_TRUE(wdb->get()->Commit().ok());
  ASSERT_TRUE(follower.Poll().ok());
  ExpectConverged(wdb->get()->db(), follower.db());

  // A checkpoint rotation bumps the generation: the follower must
  // re-bootstrap over the wire (checkpoint download + fresh cursors).
  ASSERT_TRUE(wdb->get()->Checkpoint().ok());
  ASSERT_TRUE(wdb->get()->InsertValue(Rec(99)).ok());
  ASSERT_TRUE(wdb->get()->Commit().ok());
  ASSERT_TRUE(follower.Poll().ok());
  ExpectConverged(wdb->get()->db(), follower.db());
  EXPECT_GE(follower.stats().bootstraps, 2u);

  follower.Detach();
  h.server->Stop();
}

TEST(ServeTest, NetworkFollowerReconnectsAfterPrimaryRestart) {
  storage::PosixVfs vfs;
  const std::string dir = FreshDir("wirefollow");

  persist::Replica follower;
  std::unique_ptr<RemoteShipper> shipper;
  uint16_t port = 0;
  {
    auto wdb = WalDatabase::Open(&vfs, dir, CommitPolicy{1, true});
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    ASSERT_TRUE(wdb->get()->RegisterExtent("recs", RecT()).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wdb->get()->InsertValue(Rec(i)).ok());
    }
    ASSERT_TRUE(wdb->get()->Commit().ok());

    ServeOptions opts;
    opts.workers = 1;
    opts.listen = true;
    opts.port = 0;
    auto server = Server::Start(wdb->get(), opts);
    ASSERT_TRUE(server.ok()) << server.status();
    port = (*server)->port();

    RemoteShipper::Options ropts;
    ropts.recv_timeout = std::chrono::milliseconds(2000);
    ropts.backoff_initial = std::chrono::milliseconds(5);
    ropts.backoff_max = std::chrono::milliseconds(50);
    ropts.max_reconnect_attempts = 40;
    auto connected = RemoteShipper::Connect("127.0.0.1", port, ropts);
    ASSERT_TRUE(connected.ok()) << connected.status();
    shipper = std::move(*connected);

    ASSERT_TRUE(follower.Attach(shipper.get()).ok());
    ExpectConverged(wdb->get()->db(), follower.db());

    (*server)->Stop();
  }  // the primary process "dies" here

  // Same data directory, same port: a recovered primary comes back.
  auto wdb2 = WalDatabase::Open(&vfs, dir, CommitPolicy{1, true});
  ASSERT_TRUE(wdb2.ok()) << wdb2.status();
  for (int i = 5; i < 8; ++i) {
    ASSERT_TRUE(wdb2->get()->InsertValue(Rec(i)).ok());
  }
  ASSERT_TRUE(wdb2->get()->Commit().ok());
  ServeOptions opts2;
  opts2.workers = 1;
  opts2.listen = true;
  opts2.port = port;
  auto server2 = Server::Start(wdb2->get(), opts2);
  ASSERT_TRUE(server2.ok()) << server2.status();

  // The next poll finds the transport dead, redials, sees a bumped
  // generation (the bias — the restarted primary's counter reset), and
  // re-bootstraps to the recovered primary's state.
  ASSERT_TRUE(follower.Poll().ok());
  ExpectConverged(wdb2->get()->db(), follower.db());
  EXPECT_GE(shipper->stats().reconnects, 1u);
  EXPECT_GE(follower.stats().bootstraps, 2u);

  // And keeps tailing it.
  ASSERT_TRUE(wdb2->get()->InsertValue(Rec(100)).ok());
  ASSERT_TRUE(wdb2->get()->Commit().ok());
  ASSERT_TRUE(follower.Poll().ok());
  ExpectConverged(wdb2->get()->db(), follower.db());

  follower.Detach();
  (*server2)->Stop();
}

// ---------------------------------------------------------------------
// Hostile / restarted primaries: the chunk path must stay honest.
// ---------------------------------------------------------------------

/// Reads one request frame off `sock` (blocking) and decodes it.
Result<Request> RecvRequest(Socket* sock) {
  std::vector<uint8_t> buf(kFrameHeaderBytes);
  DBPL_RETURN_IF_ERROR(sock->RecvAll(buf.data(), buf.size()));
  size_t total = 0;
  std::string err;
  FrameStatus fs = InspectFrame(buf.data(), buf.size(), &total, &err);
  if (fs == FrameStatus::kNeedMore && total > buf.size()) {
    const size_t had = buf.size();
    buf.resize(total);
    DBPL_RETURN_IF_ERROR(sock->RecvAll(buf.data() + had, total - had));
    fs = InspectFrame(buf.data(), buf.size(), &total, &err);
  }
  if (fs != FrameStatus::kFrame) return Status::Corruption(err);
  return DecodeRequest(buf.data() + kFrameHeaderBytes,
                       total - kFrameHeaderBytes);
}

/// Frames and sends one response on `sock`.
Status SendResponse(Socket* sock, const Response& resp) {
  ByteBuffer body, frame;
  EncodeResponse(resp, &body);
  DBPL_RETURN_IF_ERROR(EncodeFrame(body, &frame));
  return sock->SendAll(frame.data(), frame.size());
}

/// A scripted primary: answers the kShipBounds handshake honestly (one
/// shard) but every nonzero kReadChunk with `excess` bytes *more* than
/// requested — each answer is still a perfectly CRC-valid frame, so
/// only a follower-side length check can catch it. Zero-length probes
/// (Open's stat) are answered honestly so a shipper gets far enough to
/// reach the ReadAt copy path. Exits when the peer hangs up.
void RunOversizingPrimary(Socket sock, size_t excess) {
  while (true) {
    auto req = RecvRequest(&sock);
    if (!req.ok()) return;
    Response resp;
    resp.id = req->id;
    resp.op = req->op;
    if (req->op == ReqOp::kShipBounds) {
      resp.ship.generation = 1;
      resp.ship.shards.resize(1);
      resp.ship.shards[0].durable_bytes = 1 << 20;
      resp.ship.shards[0].epoch = 1;
    } else if (req->op == ReqOp::kReadChunk) {
      resp.file_size = 1 << 20;
      resp.chunk.assign(
          req->length == 0 ? 0 : static_cast<size_t>(req->length) + excess,
          'x');
    }
    if (!SendResponse(&sock, resp).ok()) return;
  }
}

TEST(ServeTest, OversizeChunkFromHostilePrimaryIsRejected) {
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  std::thread primary(RunOversizingPrimary, std::move(pair->second), 65536);

  auto shipper = RemoteShipper::Adopt(std::move(pair->first));
  ASSERT_TRUE(shipper.ok()) << shipper.status();
  auto file = (*shipper)->vfs()->Open((*shipper)->wal_path(0),
                                      storage::OpenMode::kRead);
  ASSERT_TRUE(file.ok()) << file.status();

  // Unchecked, the 64 KiB answer to this 8-byte read would be
  // memcpy'd straight over the tiny buffer (follower-side memory
  // corruption); it must instead die in-band as Corruption.
  uint8_t tiny[8] = {0};
  auto got = (*file)->ReadAt(0, tiny, sizeof(tiny));
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption) << got.status();

  shipper->reset();  // closes the transport; the scripted primary exits
  primary.join();
}

TEST(ServeTest, ClientRejectsOversizeChunk) {
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  std::thread primary(RunOversizingPrimary, std::move(pair->second), 4096);
  {
    Client c(std::move(pair->first));
    auto got = c.ReadChunk(ShipFile::kWalSegment, 0, 0, 16);
    EXPECT_EQ(got.status().code(), StatusCode::kCorruption) << got.status();
  }  // the Client's socket closes here; the scripted primary exits
  primary.join();
}

TEST(ServeTest, ReconnectAbortsInFlightChunkRead) {
  storage::PosixVfs vfs;
  const std::string dir = FreshDir("reconnabort");
  uint16_t port = 0;
  std::unique_ptr<RemoteShipper> shipper;
  std::unique_ptr<storage::VfsFile> file;
  uint64_t gen0 = 0;
  {
    auto wdb = WalDatabase::Open(&vfs, dir, CommitPolicy{1, true});
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    ASSERT_TRUE(wdb->get()->RegisterExtent("recs", RecT()).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wdb->get()->InsertValue(Rec(i)).ok());
    }
    ASSERT_TRUE(wdb->get()->Commit().ok());

    ServeOptions opts;
    opts.workers = 1;
    opts.listen = true;
    opts.port = 0;
    auto server = Server::Start(wdb->get(), opts);
    ASSERT_TRUE(server.ok()) << server.status();
    port = (*server)->port();

    RemoteShipper::Options ropts;
    ropts.recv_timeout = std::chrono::milliseconds(2000);
    ropts.backoff_initial = std::chrono::milliseconds(5);
    ropts.backoff_max = std::chrono::milliseconds(50);
    ropts.max_reconnect_attempts = 40;
    auto connected = RemoteShipper::Connect("127.0.0.1", port, ropts);
    ASSERT_TRUE(connected.ok()) << connected.status();
    shipper = std::move(*connected);
    gen0 = shipper->ship_bounds().generation;

    auto opened = shipper->vfs()->Open(shipper->wal_path(0),
                                       storage::OpenMode::kRead);
    ASSERT_TRUE(opened.ok()) << opened.status();
    file = std::move(*opened);
    uint8_t buf[16];
    ASSERT_TRUE(file->ReadAt(0, buf, sizeof(buf)).ok());

    (*server)->Stop();
  }  // the primary process "dies" here

  // A recovered primary is back on the same port before the follower
  // notices anything.
  auto wdb2 = WalDatabase::Open(&vfs, dir, CommitPolicy{1, true});
  ASSERT_TRUE(wdb2.ok()) << wdb2.status();
  ServeOptions opts2;
  opts2.workers = 1;
  opts2.listen = true;
  opts2.port = port;
  auto server2 = Server::Start(wdb2->get(), opts2);
  ASSERT_TRUE(server2.ok()) << server2.status();

  // The read that crosses the restart reconnects under the hood but
  // must NOT be answered from the new incarnation's file — replaying
  // the range could splice bytes from two primary lifetimes into one
  // logical read. It aborts as kUnavailable instead.
  uint8_t buf[16];
  auto got = file->ReadAt(0, buf, sizeof(buf));
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable) << got.status();
  EXPECT_GE(shipper->stats().reconnects, 1u);

  // The very next bounds poll runs on the reconnected transport and
  // reports the bumped generation — the re-bootstrap signal.
  EXPECT_GT(shipper->ship_bounds().generation, gen0);

  file.reset();
  shipper.reset();
  (*server2)->Stop();
}

TEST(ServeTest, GeometryChangeOnReconnectRefusesImmediately) {
  storage::PosixVfs vfs;
  uint16_t port = 0;
  std::unique_ptr<RemoteShipper> shipper;
  std::unique_ptr<storage::VfsFile> file;
  {
    // A 2-shard primary.
    auto wdb = WalDatabase::Open(&vfs, FreshDir("geomchange_a"),
                                 WalOptions{{1, true}, 2});
    ASSERT_TRUE(wdb.ok()) << wdb.status();
    ASSERT_TRUE(wdb->get()->RegisterExtent("recs", RecT()).ok());
    ASSERT_TRUE(wdb->get()->InsertValue(Rec(1)).ok());
    ASSERT_TRUE(wdb->get()->Commit().ok());

    ServeOptions opts;
    opts.workers = 1;
    opts.listen = true;
    opts.port = 0;
    auto server = Server::Start(wdb->get(), opts);
    ASSERT_TRUE(server.ok()) << server.status();
    port = (*server)->port();

    RemoteShipper::Options ropts;
    ropts.recv_timeout = std::chrono::milliseconds(2000);
    ropts.backoff_initial = std::chrono::milliseconds(5);
    ropts.backoff_max = std::chrono::milliseconds(50);
    ropts.max_reconnect_attempts = 40;
    auto connected = RemoteShipper::Connect("127.0.0.1", port, ropts);
    ASSERT_TRUE(connected.ok()) << connected.status();
    shipper = std::move(*connected);
    ASSERT_EQ(shipper->shard_count(), 2);

    auto opened = shipper->vfs()->Open(shipper->wal_path(0),
                                       storage::OpenMode::kRead);
    ASSERT_TRUE(opened.ok()) << opened.status();
    file = std::move(*opened);

    (*server)->Stop();
  }

  // A *different* (1-shard) database takes over the port: as far as
  // this shipper is concerned that is not a restarted primary.
  auto wdb2 = WalDatabase::Open(&vfs, FreshDir("geomchange_b"),
                                CommitPolicy{1, true});
  ASSERT_TRUE(wdb2.ok()) << wdb2.status();
  ServeOptions opts2;
  opts2.workers = 1;
  opts2.listen = true;
  opts2.port = port;
  auto server2 = Server::Start(wdb2->get(), opts2);
  ASSERT_TRUE(server2.ok()) << server2.status();

  // The refusal is permanent, so it must surface as the documented
  // kFailedPrecondition at once — not be redialed into kUnavailable
  // after max_reconnect_attempts (40 here: masking would also take
  // ~40 × backoff in wall clock).
  uint8_t buf[16];
  auto got = file->ReadAt(0, buf, sizeof(buf));
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition)
      << got.status();

  file.reset();
  shipper.reset();
  (*server2)->Stop();
}

}  // namespace
}  // namespace dbpl::serve
