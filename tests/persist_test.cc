#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/order.h"
#include "dyndb/database.h"
#include "persist/database_io.h"
#include "persist/intrinsic_store.h"
#include "persist/replicating_store.h"
#include "persist/file_util.h"
#include "persist/schema_compat.h"
#include "persist/snapshot_store.h"
#include "storage/log.h"
#include "types/parse.h"

namespace dbpl::persist {
namespace {

using core::Heap;
using core::Oid;
using core::Value;
using dyndb::Dynamic;
using dyndb::MakeDynamic;
using types::ParseType;
using types::Type;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/dbpl_persist_" + name + "_" +
         std::to_string(::getpid());
}

struct ScopedPath {
  explicit ScopedPath(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~ScopedPath() { std::remove(path.c_str()); }
  std::string path;
};

void CorruptByte(const std::string& path, off_t offset) {
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  unsigned char b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, offset), 1);
  b ^= 0xFF;
  ASSERT_EQ(::pwrite(fd, &b, 1, offset), 1);
  ::close(fd);
}

Value Person(const char* name) {
  return Value::RecordOf({{"Name", Value::String(name)}});
}

// ---------------------------------------------------------------------
// Schema compatibility (the "Persistent Pascal" recompilation rules).
// ---------------------------------------------------------------------

TEST(SchemaCompatTest, Classification) {
  Type v1 = *ParseType("{Employees: Set[{Name: String}]}");
  Type v1b = *ParseType("{Employees: Set[{Name: String}]}");
  Type v2 = *ParseType(
      "{Employees: Set[{Name: String}], Projects: Set[String]}");
  Type v3 = *ParseType("{Employees: Set[{Name: String, Empno: Int}]}");
  Type bad = *ParseType("{Employees: Int}");

  EXPECT_EQ(ClassifySchema(v1, v1b), SchemaCompat::kIdentical);
  // Stored v2 (subtype) opened at v1: a view.
  EXPECT_EQ(ClassifySchema(v2, v1), SchemaCompat::kView);
  // Stored v1 opened at the richer v2: enrichment.
  EXPECT_EQ(ClassifySchema(v1, v2), SchemaCompat::kEnrichment);
  // Sibling enrichment.
  EXPECT_EQ(ClassifySchema(v2, v3), SchemaCompat::kEnrichment);
  // Contradiction.
  EXPECT_EQ(ClassifySchema(v1, bad), SchemaCompat::kIncompatible);
}

TEST(SchemaCompatTest, EvolveSchemaNeverLosesStructure) {
  Type v1 = *ParseType("{Employees: Set[{Name: String}]}");
  Type v2 = *ParseType("{Employees: Set[{Name: String}], Count: Int}");
  // Opening stored v2 at v1 keeps v2 (the view does not strip fields).
  EXPECT_EQ(*EvolveSchema(v2, v1), v2);
  // Opening stored v1 at v2 enriches to v2.
  EXPECT_EQ(*EvolveSchema(v1, v2), v2);
  // Contradiction fails.
  EXPECT_EQ(EvolveSchema(v1, *ParseType("{Employees: Bool}")).status().code(),
            StatusCode::kInconsistent);
}

// ---------------------------------------------------------------------
// SnapshotStore (all-or-nothing persistence).
// ---------------------------------------------------------------------

TEST(SnapshotStoreTest, SaveAndLoadWholeImage) {
  ScopedPath file(TempPath("snap1"));
  Heap heap;
  Oid alice = heap.Allocate(Person("Alice"));
  Oid bob = heap.Allocate(Person("Bob"));
  Oid all = heap.Allocate(Value::List({Value::Ref(alice), Value::Ref(bob)}));
  ASSERT_TRUE(SnapshotStore::Save(file.path, heap, {{"everyone", all}}).ok());

  auto image = SnapshotStore::Load(file.path);
  ASSERT_TRUE(image.ok()) << image.status();
  EXPECT_EQ(image->heap.size(), 3u);
  EXPECT_EQ(image->roots.at("everyone"), all);
  // Oids are preserved exactly (it is a core image).
  EXPECT_EQ(*image->heap.Get(alice), Person("Alice"));
}

TEST(SnapshotStoreTest, OneFlippedBitInvalidatesTheWholeImage) {
  // The paper: "the survival of the database is highly dependent on the
  // integrity of the programming system as a whole".
  ScopedPath file(TempPath("snap2"));
  Heap heap;
  for (int i = 0; i < 10; ++i) {
    heap.Allocate(Person(("P" + std::to_string(i)).c_str()));
  }
  ASSERT_TRUE(SnapshotStore::Save(file.path, heap, {}).ok());
  CorruptByte(file.path, 40);
  auto image = SnapshotStore::Load(file.path);
  EXPECT_FALSE(image.ok());
}

TEST(SnapshotStoreTest, SaveIsAtomic) {
  ScopedPath file(TempPath("snap3"));
  Heap heap1;
  heap1.Allocate(Person("V1"));
  ASSERT_TRUE(SnapshotStore::Save(file.path, heap1, {}).ok());
  // A second save replaces it atomically; the temp file never lingers.
  Heap heap2;
  heap2.Allocate(Person("V2"));
  heap2.Allocate(Person("V2b"));
  ASSERT_TRUE(SnapshotStore::Save(file.path, heap2, {}).ok());
  EXPECT_FALSE(FileExists(file.path + ".tmp"));
  auto image = SnapshotStore::Load(file.path);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->heap.size(), 2u);
}

TEST(SnapshotStoreTest, RootsMustResolve) {
  ScopedPath file(TempPath("snap4"));
  Heap heap;
  heap.Allocate(Person("X"));
  ASSERT_TRUE(SnapshotStore::Save(file.path, heap, {{"bad", 999}}).ok());
  EXPECT_EQ(SnapshotStore::Load(file.path).status().code(),
            StatusCode::kCorruption);
}

TEST(SnapshotStoreTest, SingleValueConvenience) {
  ScopedPath file(TempPath("snap5"));
  Dynamic d = MakeDynamic(Value::Int(42));
  ASSERT_TRUE(SnapshotStore::SaveValue(file.path, d).ok());
  auto back = SnapshotStore::LoadValue(file.path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, d);
  EXPECT_EQ(SnapshotStore::LoadValue(TempPath("missing")).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------
// ReplicatingStore (extern/intern; Amber).
// ---------------------------------------------------------------------

class ReplicatingStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempPath("repl");
    std::string cmd = "rm -rf " + dir_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    auto store = ReplicatingStore::Open(dir_);
    ASSERT_TRUE(store.ok()) << store.status();
    store_ = std::move(store).value();
  }
  void TearDown() override {
    std::string cmd = "rm -rf " + dir_;
    (void)std::system(cmd.c_str());
  }

  std::string dir_;
  std::unique_ptr<ReplicatingStore> store_;
};

TEST_F(ReplicatingStoreTest, PaperExternInternExample) {
  // extern('DBFile', dynamic d); ... var x = intern 'DBFile';
  // var d = coerce x to database
  Type database_t = *ParseType("List[{Name: String}]");
  Value db = Value::List({Person("Alice"), Person("Bob")});
  auto d = dyndb::MakeDynamicAs(db, database_t);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(store_->Extern("DBFile", *d).ok());

  auto x = store_->Intern("DBFile");
  ASSERT_TRUE(x.ok()) << x.status();
  auto coerced = dyndb::Coerce(*x, database_t);
  ASSERT_TRUE(coerced.ok());
  EXPECT_EQ(*coerced, db);
  // The coerce fails if the type associated with the value is wrong.
  EXPECT_EQ(dyndb::Coerce(*x, Type::Int()).status().code(),
            StatusCode::kTypeError);
}

TEST_F(ReplicatingStoreTest, ModificationsDoNotSurviveSecondIntern) {
  // The paper's anomaly: "the modifications to x will not survive the
  // second intern operation".
  Heap heap;
  Oid obj = heap.Allocate(Person("original"));
  ASSERT_TRUE(
      store_->Extern("DBFile", MakeDynamic(Value::Ref(obj)), &heap).ok());

  // First intern; modify the interned copy (but do not extern).
  auto x = store_->Intern("DBFile", &heap);
  ASSERT_TRUE(x.ok());
  Oid copy1 = x->value.AsRef();
  ASSERT_TRUE(heap.Put(copy1, Person("modified")).ok());

  // Second intern: the modification is gone.
  auto y = store_->Intern("DBFile", &heap);
  ASSERT_TRUE(y.ok());
  Oid copy2 = y->value.AsRef();
  EXPECT_NE(copy1, copy2);
  EXPECT_EQ(*heap.Get(copy2), Person("original"));
  // Unless the modified copy is externed back.
  ASSERT_TRUE(
      store_->Extern("DBFile", MakeDynamic(Value::Ref(copy1)), &heap).ok());
  auto z = store_->Intern("DBFile", &heap);
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(*heap.Get(z->value.AsRef()), Person("modified"));
}

TEST_F(ReplicatingStoreTest, SharedValueSplitsAcrossHandles) {
  // The paper: if a and b both refer to c, changes through a's handle
  // are invisible through b's — the handles hold distinct copies of c.
  Heap heap;
  Oid c = heap.Allocate(Value::Int(1));
  Oid a = heap.Allocate(Value::RecordOf({{"c", Value::Ref(c)}}));
  Oid b = heap.Allocate(Value::RecordOf({{"c", Value::Ref(c)}}));
  ASSERT_TRUE(store_->Extern("a", MakeDynamic(Value::Ref(a)), &heap).ok());
  ASSERT_TRUE(store_->Extern("b", MakeDynamic(Value::Ref(b)), &heap).ok());

  auto ia = store_->Intern("a", &heap);
  auto ib = store_->Intern("b", &heap);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  Oid ca = heap.Get(ia->value.AsRef())->FindField("c")->AsRef();
  Oid cb = heap.Get(ib->value.AsRef())->FindField("c")->AsRef();
  EXPECT_NE(ca, cb);  // two distinct copies: wasted storage
  ASSERT_TRUE(heap.Put(ca, Value::Int(99)).ok());
  EXPECT_EQ(*heap.Get(cb), Value::Int(1));  // update anomaly
}

TEST_F(ReplicatingStoreTest, SharingWithinOneHandlePreserved) {
  Heap heap;
  Oid shared = heap.Allocate(Value::Int(7));
  Oid root = heap.Allocate(Value::RecordOf(
      {{"left", Value::Ref(shared)}, {"right", Value::Ref(shared)}}));
  ASSERT_TRUE(
      store_->Extern("diamond", MakeDynamic(Value::Ref(root)), &heap).ok());
  auto in = store_->Intern("diamond", &heap);
  ASSERT_TRUE(in.ok());
  Value r = *heap.Get(in->value.AsRef());
  EXPECT_EQ(r.FindField("left")->AsRef(), r.FindField("right")->AsRef());
}

TEST_F(ReplicatingStoreTest, CyclesSurviveReplication) {
  Heap heap;
  Oid a = heap.Allocate(Value::Bottom());
  Oid b = heap.Allocate(Value::RecordOf({{"peer", Value::Ref(a)}}));
  ASSERT_TRUE(heap.Put(a, Value::RecordOf({{"peer", Value::Ref(b)}})).ok());
  ASSERT_TRUE(
      store_->Extern("cycle", MakeDynamic(Value::Ref(a)), &heap).ok());
  auto in = store_->Intern("cycle", &heap);
  ASSERT_TRUE(in.ok());
  Oid na = in->value.AsRef();
  Oid nb = heap.Get(na)->FindField("peer")->AsRef();
  EXPECT_EQ(heap.Get(nb)->FindField("peer")->AsRef(), na);
  EXPECT_NE(na, a);
}

TEST_F(ReplicatingStoreTest, InternAsEnforcesType) {
  ASSERT_TRUE(store_->Extern("n", MakeDynamic(Value::Int(5))).ok());
  EXPECT_EQ(*store_->InternAs("n", Type::Int()), Value::Int(5));
  EXPECT_EQ(store_->InternAs("n", Type::String()).status().code(),
            StatusCode::kTypeError);
}

TEST_F(ReplicatingStoreTest, HandleManagement) {
  EXPECT_FALSE(store_->HasHandle("x"));
  EXPECT_EQ(store_->Intern("x").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store_->Extern("x", MakeDynamic(Value::Int(1))).ok());
  ASSERT_TRUE(store_->Extern("y", MakeDynamic(Value::Int(2))).ok());
  EXPECT_EQ(store_->Handles(), (std::vector<std::string>{"x", "y"}));
  ASSERT_TRUE(store_->Drop("x").ok());
  EXPECT_FALSE(store_->HasHandle("x"));
  EXPECT_EQ(store_->Drop("x").code(), StatusCode::kNotFound);
  EXPECT_FALSE(store_->Extern("bad/name", MakeDynamic(Value::Int(0))).ok());
}

// ---------------------------------------------------------------------
// IntrinsicStore (reachability persistence; PS-algol / GemStone).
// ---------------------------------------------------------------------

TEST(IntrinsicStoreTest, HandleAloneEnsuresPersistence) {
  ScopedPath file(TempPath("intr1"));
  Oid db_oid;
  {
    auto store = IntrinsicStore::Open(file.path);
    ASSERT_TRUE(store.ok()) << store.status();
    Heap& heap = (*store)->heap();
    Oid alice = heap.Allocate(Person("Alice"));
    db_oid = heap.Allocate(Value::List({Value::Ref(alice)}));
    // "Creating this global name is all that is required to ensure
    // persistence."
    ASSERT_TRUE((*store)->SetRoot("DB", db_oid).ok());
    ASSERT_TRUE((*store)->Commit().ok());
  }
  auto store = IntrinsicStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  auto root = (*store)->GetRoot("DB");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, db_oid);  // stable identity, no copies
  Value db = *(*store)->heap().Get(*root);
  Value alice = *(*store)->heap().Get(db.elements()[0].AsRef());
  EXPECT_EQ(alice, Person("Alice"));
}

TEST(IntrinsicStoreTest, SharingPreservedAcrossRuns) {
  // Contrast with the replicating anomaly: one object reachable from
  // two roots stays ONE object.
  ScopedPath file(TempPath("intr2"));
  {
    auto store = IntrinsicStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    Heap& heap = (*store)->heap();
    Oid c = heap.Allocate(Value::Int(1));
    Oid a = heap.Allocate(Value::RecordOf({{"c", Value::Ref(c)}}));
    Oid b = heap.Allocate(Value::RecordOf({{"c", Value::Ref(c)}}));
    ASSERT_TRUE((*store)->SetRoot("a", a).ok());
    ASSERT_TRUE((*store)->SetRoot("b", b).ok());
    ASSERT_TRUE((*store)->Commit().ok());
  }
  auto store = IntrinsicStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  Heap& heap = (*store)->heap();
  Oid ca = heap.Get(*(*store)->GetRoot("a"))->FindField("c")->AsRef();
  Oid cb = heap.Get(*(*store)->GetRoot("b"))->FindField("c")->AsRef();
  EXPECT_EQ(ca, cb);  // one shared object
  // An update through a is visible through b (after commit + reopen).
  ASSERT_TRUE(heap.Put(ca, Value::Int(99)).ok());
  ASSERT_TRUE((*store)->Commit().ok());
  auto store2 = IntrinsicStore::Open(file.path);
  ASSERT_TRUE(store2.ok());
  Oid cb2 =
      (*store2)->heap().Get(*(*store2)->GetRoot("b"))->FindField("c")->AsRef();
  EXPECT_EQ(*(*store2)->heap().Get(cb2), Value::Int(99));
}

TEST(IntrinsicStoreTest, UncommittedChangesDoNotSurvive) {
  // PS-algol's commit: "before this instruction is called, the
  // persistent value and the value being used by the program can
  // diverge".
  ScopedPath file(TempPath("intr3"));
  Oid obj;
  {
    auto store = IntrinsicStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    obj = (*store)->heap().Allocate(Person("committed"));
    ASSERT_TRUE((*store)->SetRoot("r", obj).ok());
    ASSERT_TRUE((*store)->Commit().ok());
    // Mutate after commit, then "crash" (drop the store).
    ASSERT_TRUE((*store)->heap().Put(obj, Person("uncommitted")).ok());
    EXPECT_TRUE((*store)->HasUncommittedChanges());
  }
  auto store = IntrinsicStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->heap().Get(obj), Person("committed"));
  EXPECT_FALSE((*store)->HasUncommittedChanges());
}

TEST(IntrinsicStoreTest, CommitIsIncrementalAndAtomic) {
  ScopedPath file(TempPath("intr4"));
  auto store = IntrinsicStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  Heap& heap = (*store)->heap();
  std::vector<Oid> oids;
  for (int i = 0; i < 20; ++i) oids.push_back(heap.Allocate(Value::Int(i)));
  Oid root = heap.Allocate(Value::Bottom());
  std::vector<Value> refs;
  for (Oid o : oids) refs.push_back(Value::Ref(o));
  ASSERT_TRUE(heap.Put(root, Value::List(refs)).ok());
  ASSERT_TRUE((*store)->SetRoot("all", root).ok());
  ASSERT_TRUE((*store)->Commit().ok());
  uint64_t after_first = (*store)->kv().log_bytes();
  // Touch one object; the second commit writes only the delta.
  ASSERT_TRUE(heap.Put(oids[3], Value::Int(333)).ok());
  ASSERT_TRUE((*store)->Commit().ok());
  uint64_t delta = (*store)->kv().log_bytes() - after_first;
  EXPECT_LT(delta, after_first / 4);
}

TEST(IntrinsicStoreTest, GarbageCollection) {
  ScopedPath file(TempPath("intr5"));
  auto store = IntrinsicStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  Heap& heap = (*store)->heap();
  Oid keep = heap.Allocate(Person("keep"));
  heap.Allocate(Person("garbage1"));
  heap.Allocate(Person("garbage2"));
  ASSERT_TRUE((*store)->SetRoot("r", keep).ok());
  EXPECT_EQ((*store)->CollectGarbage(), 2u);
  ASSERT_TRUE((*store)->Commit().ok());
  ASSERT_TRUE((*store)->CompactStorage().ok());
  auto store2 = IntrinsicStore::Open(file.path);
  ASSERT_TRUE(store2.ok());
  EXPECT_EQ((*store2)->heap().size(), 1u);
}

TEST(IntrinsicStoreTest, RootManagement) {
  ScopedPath file(TempPath("intr6"));
  auto store = IntrinsicStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->GetRoot("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->SetRoot("r", 12345).code(), StatusCode::kNotFound);
  Oid o = (*store)->heap().Allocate(Value::Int(1));
  ASSERT_TRUE((*store)->SetRoot("r", o).ok());
  EXPECT_EQ((*store)->RootNames(), (std::vector<std::string>{"r"}));
  ASSERT_TRUE((*store)->RemoveRoot("r").ok());
  EXPECT_EQ((*store)->RemoveRoot("r").code(), StatusCode::kNotFound);
}

TEST(IntrinsicStoreTest, SchemaEvolutionOnOpenRoot) {
  ScopedPath file(TempPath("intr7"));
  Type v1 = *ParseType("{Employees: Set[{Name: String}]}");
  Type v2 = *ParseType(
      "{Employees: Set[{Name: String}], Projects: Set[String]}");
  Type bad = *ParseType("{Employees: Int}");
  {
    auto store = IntrinsicStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    Oid db = (*store)->heap().Allocate(Value::RecordOf(
        {{"Employees", Value::Set({Person("A")})}}));
    ASSERT_TRUE((*store)->SetRootTyped("DB", db, v1).ok());
    ASSERT_TRUE((*store)->Commit().ok());
  }
  // Recompile with the enriched type v2: allowed; the schema evolves.
  {
    auto store = IntrinsicStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    auto oid = (*store)->OpenRootChecked("DB", v2);
    ASSERT_TRUE(oid.ok()) << oid.status();
    EXPECT_EQ(*(*store)->RootType("DB"), v2);
    ASSERT_TRUE((*store)->Commit().ok());
  }
  // Opening at the original v1 still works (now a view of v2).
  {
    auto store = IntrinsicStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(*(*store)->RootType("DB"), v2);
    EXPECT_TRUE((*store)->OpenRootChecked("DB", v1).ok());
    EXPECT_EQ(*(*store)->RootType("DB"), v2);  // nothing lost
  }
  // A contradictory recompilation is rejected.
  {
    auto store = IntrinsicStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->OpenRootChecked("DB", bad).status().code(),
              StatusCode::kInconsistent);
  }
}

TEST(DatabaseIoTest, DatabaseRoundTripsAndExtentsAreDerived) {
  ScopedPath file(TempPath("dbio"));
  Type person_t = *ParseType("{Name: String}");
  Type employee_t = *ParseType("{Name: String, Empno: Int}");
  dyndb::Database db;
  db.MustInsertValue(Person("p1"));
  db.MustInsertValue(Value::RecordOf(
      {{"Name", Value::String("e1")}, {"Empno", Value::Int(1)}}));
  db.MustInsertValue(Value::Int(42));
  ASSERT_TRUE(persist::SaveDatabase(file.path, db).ok());

  auto loaded = persist::LoadDatabase(file.path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 3u);
  // Every entry round-trips with its type.
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(loaded->entries()[i], db.entries()[i]);
  }
  // Extents are derived state: re-register and get the same answers.
  ASSERT_TRUE(loaded->RegisterExtent("employees", employee_t).ok());
  EXPECT_EQ(loaded->GetViaExtent(employee_t)->size(), 1u);
  EXPECT_EQ(loaded->GetScan(person_t).size(), 2u);
  // Multiple extents over the same type coexist (extent ≠ type).
  ASSERT_TRUE(loaded->RegisterExtent("employees2", employee_t).ok());
  EXPECT_EQ(loaded->ExtentNames().size(), 2u);
}

TEST(DatabaseIoTest, CorruptDatabaseFileRejected) {
  ScopedPath file(TempPath("dbio_bad"));
  dyndb::Database db;
  db.MustInsertValue(Value::Int(1));
  ASSERT_TRUE(persist::SaveDatabase(file.path, db).ok());
  CorruptByte(file.path, 9);
  EXPECT_FALSE(persist::LoadDatabase(file.path).ok());
  EXPECT_EQ(persist::LoadDatabase(TempPath("nonexistent")).status().code(),
            StatusCode::kNotFound);
}

TEST(IntrinsicStoreTest, CrashMidCommitRecoversPreviousState) {
  ScopedPath file(TempPath("intr8"));
  {
    auto store = IntrinsicStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    Oid o = (*store)->heap().Allocate(Value::Int(1));
    ASSERT_TRUE((*store)->SetRoot("r", o).ok());
    ASSERT_TRUE((*store)->Commit().ok());
  }
  // Simulate a crash mid-commit: append object puts without a commit
  // marker, as an interrupted Commit() would leave.
  {
    auto writer = storage::LogWriter::Open(file.path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        (*writer)
            ->Append({storage::LogRecordType::kPut, "o/99", "garbage"})
            .ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto store = IntrinsicStore::Open(file.path);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->heap().size(), 1u);
  EXPECT_FALSE((*store)->heap().Contains(99));
}

}  // namespace
}  // namespace dbpl::persist
