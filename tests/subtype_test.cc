#include "types/subtype.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"
#include "types/lattice.h"
#include "types/type.h"

namespace dbpl::types {
namespace {

// Person / Employee / Student hierarchy, as the paper's running example
// (in Amber, the subtype relation is inferred from the structure).
Type Person() {
  return Type::RecordOf({{"Name", Type::String()},
                         {"Address", Type::RecordOf({{"City", Type::String()}})}});
}
Type Employee() {
  return Type::RecordOf({{"Name", Type::String()},
                         {"Address", Type::RecordOf({{"City", Type::String()}})},
                         {"Empno", Type::Int()},
                         {"Dept", Type::String()}});
}
Type Student() {
  return Type::RecordOf({{"Name", Type::String()},
                         {"Address", Type::RecordOf({{"City", Type::String()}})},
                         {"StudentId", Type::Int()}});
}

TEST(SubtypeTest, ReflexiveOnAllKinds) {
  std::vector<Type> samples = {
      Type::Bottom(), Type::Top(), Type::Int(), Type::Dynamic(), Person(),
      Type::List(Person()), Type::Set(Type::Int()),
      Type::Func({Person()}, Type::Int()), Type::RefTo(Person()),
      Type::Var("t"), Type::Forall("t", Person(), Type::Var("t")),
      Type::Exists("t", Person(), Type::Var("t")),
      Type::Mu("l", Type::RecordOf({{"next", Type::Var("l")}}))};
  for (const auto& t : samples) {
    EXPECT_TRUE(IsSubtype(t, t)) << t.ToString();
  }
}

TEST(SubtypeTest, BottomAndTop) {
  for (const Type& t : {Type::Int(), Person(), Type::Dynamic(),
                        Type::Func({Type::Int()}, Type::Int())}) {
    EXPECT_TRUE(IsSubtype(Type::Bottom(), t));
    EXPECT_TRUE(IsSubtype(t, Type::Top()));
    if (!t.is_top()) EXPECT_FALSE(IsSubtype(Type::Top(), t));
    if (!t.is_bottom()) EXPECT_FALSE(IsSubtype(t, Type::Bottom()));
  }
}

TEST(SubtypeTest, EmployeeIsSubtypeOfPerson) {
  EXPECT_TRUE(IsSubtype(Employee(), Person()));
  EXPECT_FALSE(IsSubtype(Person(), Employee()));
  EXPECT_TRUE(IsSubtype(Student(), Person()));
  EXPECT_FALSE(IsSubtype(Employee(), Student()));
  EXPECT_FALSE(IsSubtype(Student(), Employee()));
}

TEST(SubtypeTest, RecordDepthSubtyping) {
  Type wide_addr = Type::RecordOf(
      {{"Name", Type::String()},
       {"Address", Type::RecordOf(
                       {{"City", Type::String()}, {"Zip", Type::Int()}})}});
  EXPECT_TRUE(IsSubtype(wide_addr, Person()));
  EXPECT_FALSE(IsSubtype(Person(), wide_addr));
}

TEST(SubtypeTest, EmptyRecordIsTopOfRecords) {
  Type empty = Type::RecordOf({});
  EXPECT_TRUE(IsSubtype(Person(), empty));
  EXPECT_FALSE(IsSubtype(empty, Person()));
}

TEST(SubtypeTest, BaseTypesUnrelated) {
  EXPECT_FALSE(IsSubtype(Type::Int(), Type::Real()));
  EXPECT_FALSE(IsSubtype(Type::Real(), Type::Int()));
  EXPECT_FALSE(IsSubtype(Type::Int(), Type::String()));
  EXPECT_FALSE(IsSubtype(Type::Dynamic(), Type::Int()));
  EXPECT_FALSE(IsSubtype(Type::Int(), Type::Dynamic()));
}

TEST(SubtypeTest, ListAndSetCovariant) {
  EXPECT_TRUE(IsSubtype(Type::List(Employee()), Type::List(Person())));
  EXPECT_FALSE(IsSubtype(Type::List(Person()), Type::List(Employee())));
  EXPECT_TRUE(IsSubtype(Type::Set(Employee()), Type::Set(Person())));
  EXPECT_FALSE(IsSubtype(Type::List(Person()), Type::Set(Person())));
}

TEST(SubtypeTest, RefInvariant) {
  EXPECT_FALSE(IsSubtype(Type::RefTo(Employee()), Type::RefTo(Person())));
  EXPECT_FALSE(IsSubtype(Type::RefTo(Person()), Type::RefTo(Employee())));
  EXPECT_TRUE(IsSubtype(Type::RefTo(Person()), Type::RefTo(Person())));
}

TEST(SubtypeTest, FunctionContravariantParamsCovariantResult) {
  // A function that accepts any Person and returns an Employee can be
  // used where one accepting Employees and returning Persons is needed.
  Type sub = Type::Func({Person()}, Employee());
  Type sup = Type::Func({Employee()}, Person());
  EXPECT_TRUE(IsSubtype(sub, sup));
  EXPECT_FALSE(IsSubtype(sup, sub));
  // Arity must match.
  EXPECT_FALSE(
      IsSubtype(Type::Func({}, Person()), Type::Func({Person()}, Person())));
}

TEST(SubtypeTest, VariantCovariantWidth) {
  Type small = Type::VariantOf({{"ok", Type::Int()}});
  Type big = Type::VariantOf({{"ok", Type::Int()}, {"err", Type::String()}});
  EXPECT_TRUE(IsSubtype(small, big));
  EXPECT_FALSE(IsSubtype(big, small));
}

TEST(SubtypeTest, VarSubtypeThroughBound) {
  BoundEnv env;
  env["t"] = Employee();
  EXPECT_TRUE(IsSubtype(Type::Var("t"), Person(), env));
  EXPECT_TRUE(IsSubtype(Type::Var("t"), Employee(), env));
  EXPECT_FALSE(IsSubtype(Type::Var("t"), Student(), env));
  EXPECT_FALSE(IsSubtype(Person(), Type::Var("t"), env));
  // Unknown variables are only below Top and themselves.
  EXPECT_TRUE(IsSubtype(Type::Var("u"), Type::Top()));
  EXPECT_TRUE(IsSubtype(Type::Var("u"), Type::Var("u")));
  EXPECT_FALSE(IsSubtype(Type::Var("u"), Person()));
}

TEST(SubtypeTest, ForallAlphaEquivalence) {
  Type a = Type::Forall("t", Person(), Type::Func({Type::Var("t")}, Type::Var("t")));
  Type b = Type::Forall("s", Person(), Type::Func({Type::Var("s")}, Type::Var("s")));
  EXPECT_TRUE(TypeEquiv(a, b));
}

TEST(SubtypeTest, ForallKernelRuleRequiresEquivalentBounds) {
  Type a = Type::Forall("t", Employee(), Type::Var("t"));
  Type b = Type::Forall("t", Person(), Type::Var("t"));
  EXPECT_FALSE(IsSubtype(a, b));
  EXPECT_FALSE(IsSubtype(b, a));
}

TEST(SubtypeTest, ForallBodySubtyping) {
  // Same bound, body covariance: ∀t ≤ P. Employee ≤ ∀t ≤ P. Person.
  Type a = Type::Forall("t", Person(), Employee());
  Type b = Type::Forall("t", Person(), Person());
  EXPECT_TRUE(IsSubtype(a, b));
  EXPECT_FALSE(IsSubtype(b, a));
}

TEST(SubtypeTest, ExistentialPacking) {
  // The element type of Get's result: Employee ≤ ∃t ≤ Person. t.
  Type pkg = Type::Exists("t", Person(), Type::Var("t"));
  EXPECT_TRUE(IsSubtype(Employee(), pkg));
  EXPECT_TRUE(IsSubtype(Person(), pkg));
  EXPECT_TRUE(IsSubtype(Student(), pkg));
  EXPECT_FALSE(IsSubtype(Type::Int(), pkg));
  // And List covariance lifts it to Get's whole result type.
  EXPECT_TRUE(IsSubtype(Type::List(Employee()), Type::List(pkg)));
}

TEST(SubtypeTest, ExistentialWidening) {
  // ∃t ≤ Employee. t  ≤  ∃t ≤ Person. t does NOT follow from the kernel
  // rule (bounds must be equivalent), but every packed Employee also
  // packs at Person directly.
  Type emp_pkg = Type::Exists("t", Employee(), Type::Var("t"));
  Type person_pkg = Type::Exists("t", Person(), Type::Var("t"));
  EXPECT_TRUE(TypeEquiv(emp_pkg, emp_pkg));
  EXPECT_FALSE(IsSubtype(person_pkg, emp_pkg));
}

TEST(SubtypeTest, RecursiveTypesEquiRecursive) {
  // IntList and its one-step unfolding are equivalent.
  Type list = Type::Mu(
      "l", Type::VariantOf(
               {{"nil", Type::RecordOf({})},
                {"cons", Type::RecordOf(
                             {{"head", Type::Int()}, {"tail", Type::Var("l")}})}}));
  EXPECT_TRUE(TypeEquiv(list, list.Unfold()));
  EXPECT_TRUE(TypeEquiv(list.Unfold(), list.Unfold().FindField("cons")
                                           ->FindField("tail")
                                           ->Unfold()));
}

TEST(SubtypeTest, RecursiveRecordSubtyping) {
  // Streams of Employees are subtypes of streams of Persons.
  Type emp_stream = Type::Mu(
      "s", Type::RecordOf({{"head", Employee()}, {"tail", Type::Var("s")}}));
  Type person_stream = Type::Mu(
      "s", Type::RecordOf({{"head", Person()}, {"tail", Type::Var("s")}}));
  EXPECT_TRUE(IsSubtype(emp_stream, person_stream));
  EXPECT_FALSE(IsSubtype(person_stream, emp_stream));
}

TEST(SubtypeTest, DistinctRecursiveShapesNotRelated) {
  Type a = Type::Mu("s", Type::RecordOf({{"x", Type::Var("s")}}));
  Type b = Type::Mu("s", Type::RecordOf({{"y", Type::Var("s")}}));
  EXPECT_FALSE(IsSubtype(a, b));
  EXPECT_FALSE(IsSubtype(b, a));
}

TEST(SubtypeTest, TransitivityOnHierarchySamples) {
  std::vector<Type> chain = {Employee(), Person(), Type::RecordOf({}),
                             Type::Top()};
  for (size_t i = 0; i < chain.size(); ++i) {
    for (size_t j = i; j < chain.size(); ++j) {
      EXPECT_TRUE(IsSubtype(chain[i], chain[j]))
          << chain[i].ToString() << " ≤ " << chain[j].ToString();
    }
  }
}

// -----------------------------------------------------------------------
// Property tests over random structural types (quantifier-free corpus).
// -----------------------------------------------------------------------

class SubtypePropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SubtypePropertyTest,
                         ::testing::Values(2, 3, 5, 7, 11, 13));

TEST_P(SubtypePropertyTest, PreorderLaws) {
  auto corpus = dbpl::testing::TypeCorpus(GetParam(), 18, 2);
  for (const auto& a : corpus) {
    EXPECT_TRUE(IsSubtype(a, a)) << a;
    for (const auto& b : corpus) {
      for (const auto& c : corpus) {
        if (IsSubtype(a, b) && IsSubtype(b, c)) {
          EXPECT_TRUE(IsSubtype(a, c))
              << a << " ≤ " << b << " ≤ " << c;
        }
      }
    }
  }
}

TEST_P(SubtypePropertyTest, LubIsLeastUpperBound) {
  auto corpus = dbpl::testing::TypeCorpus(GetParam() * 31, 18, 2);
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      Type l = Lub(a, b);
      EXPECT_TRUE(IsSubtype(a, l)) << a << " !≤ lub " << l;
      EXPECT_TRUE(IsSubtype(b, l)) << b << " !≤ lub " << l;
      EXPECT_TRUE(TypeEquiv(l, Lub(b, a)));
      // Least among the corpus's upper bounds.
      for (const auto& u : corpus) {
        if (IsSubtype(a, u) && IsSubtype(b, u)) {
          EXPECT_TRUE(IsSubtype(l, u))
              << "lub " << l << " not least vs " << u;
        }
      }
    }
  }
}

TEST_P(SubtypePropertyTest, GlbIsGreatestLowerBound) {
  auto corpus = dbpl::testing::TypeCorpus(GetParam() * 17, 15, 2);
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      auto g = Glb(a, b);
      if (!g.ok()) {
        // No common subtype: no corpus type may be below both
        // (except Bottom, which Glb deliberately excludes).
        for (const auto& l : corpus) {
          if (!l.is_bottom() && IsSubtype(l, a) && IsSubtype(l, b)) {
            ADD_FAILURE() << l << " is below both " << a << " and " << b
                          << " but Glb failed";
          }
        }
        continue;
      }
      EXPECT_TRUE(IsSubtype(*g, a)) << *g << " !≤ " << a;
      EXPECT_TRUE(IsSubtype(*g, b)) << *g << " !≤ " << b;
      for (const auto& l : corpus) {
        if (l.is_bottom()) continue;
        if (IsSubtype(l, a) && IsSubtype(l, b)) {
          EXPECT_TRUE(IsSubtype(l, *g))
              << "glb " << *g << " not greatest vs " << l;
        }
      }
    }
  }
}

TEST_P(SubtypePropertyTest, SubtypeAgreesWithLattice) {
  auto corpus = dbpl::testing::TypeCorpus(GetParam() * 101, 15, 2);
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      if (IsSubtype(a, b)) {
        EXPECT_TRUE(TypeEquiv(Lub(a, b), b));
        auto g = Glb(a, b);
        if (!a.is_bottom()) {
          ASSERT_TRUE(g.ok()) << a << " ≤ " << b;
          EXPECT_TRUE(TypeEquiv(*g, a));
        }
      }
    }
  }
}

TEST(SubtypeTest, GetExtentContainmentFollowsFromSubtyping) {
  // The key claim: T ≤ U means every T-value is a U-value, so the class
  // hierarchy (extent inclusion) is derivable from the type hierarchy.
  // Checked here at the type level; database_test checks it on data.
  EXPECT_TRUE(IsSubtype(Employee(), Person()));
  Type emp_pkg = Type::Exists("t", Employee(), Type::Var("t"));
  Type person_pkg = Type::Exists("t", Person(), Type::Var("t"));
  // Any type packing at the Employee bound also packs at Person:
  EXPECT_TRUE(IsSubtype(Employee(), emp_pkg));
  EXPECT_TRUE(IsSubtype(Employee(), person_pkg));
}

}  // namespace
}  // namespace dbpl::types
